//! IPv4 header handling, fragmentation and reassembly.
//!
//! IP fragmentation is the workload of the paper's inline defragmentation
//! accelerator (§ 7): fragments break NIC RSS and L4-checksum offloads, and
//! FlexDriver reassembles them *between* NIC offload stages.

use std::fmt;

use bytes::{BufMut, Bytes, BytesMut};

use crate::checksum::checksum;
use crate::error::ParsePacketError;

/// Length of a basic IPv4 header (no options).
pub const IPV4_HEADER_LEN: usize = 20;

/// An IPv4 address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Ipv4Addr(pub [u8; 4]);

impl Ipv4Addr {
    /// Creates an address from octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Addr([a, b, c, d])
    }

    /// The raw octets.
    pub const fn octets(self) -> [u8; 4] {
        self.0
    }

    /// The address as a big-endian `u32`.
    pub const fn as_u32(self) -> u32 {
        u32::from_be_bytes(self.0)
    }
}

impl fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}.{}", self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

impl From<u32> for Ipv4Addr {
    fn from(v: u32) -> Self {
        Ipv4Addr(v.to_be_bytes())
    }
}

/// IP protocol numbers used by the models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpProto {
    /// ICMP (1).
    Icmp,
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// Anything else.
    Other(u8),
}

impl IpProto {
    /// Numeric protocol value.
    pub fn value(self) -> u8 {
        match self {
            IpProto::Icmp => 1,
            IpProto::Tcp => 6,
            IpProto::Udp => 17,
            IpProto::Other(v) => v,
        }
    }
}

impl From<u8> for IpProto {
    fn from(v: u8) -> Self {
        match v {
            1 => IpProto::Icmp,
            6 => IpProto::Tcp,
            17 => IpProto::Udp,
            other => IpProto::Other(other),
        }
    }
}

/// An IPv4 header (options unsupported; IHL is always 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Differentiated services byte.
    pub dscp_ecn: u8,
    /// Total length (header + payload).
    pub total_len: u16,
    /// Identification field (shared by all fragments of a datagram).
    pub id: u16,
    /// Don't-fragment flag.
    pub dont_fragment: bool,
    /// More-fragments flag.
    pub more_fragments: bool,
    /// Fragment offset in 8-byte units.
    pub frag_offset: u16,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol.
    pub proto: IpProto,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
}

impl Ipv4Header {
    /// Creates a non-fragmented header with common defaults.
    pub fn simple(src: Ipv4Addr, dst: Ipv4Addr, proto: IpProto, payload_len: usize) -> Self {
        Ipv4Header {
            dscp_ecn: 0,
            total_len: (IPV4_HEADER_LEN + payload_len) as u16,
            id: 0,
            dont_fragment: false,
            more_fragments: false,
            frag_offset: 0,
            ttl: 64,
            proto,
            src,
            dst,
        }
    }

    /// Whether this packet is a fragment (first, middle or last).
    pub fn is_fragment(&self) -> bool {
        self.more_fragments || self.frag_offset != 0
    }

    /// Payload length implied by `total_len`.
    pub fn payload_len(&self) -> usize {
        (self.total_len as usize).saturating_sub(IPV4_HEADER_LEN)
    }

    /// Serializes the header (with a correct checksum) into `buf`.
    pub fn write(&self, buf: &mut BytesMut) {
        let start = buf.len();
        buf.put_u8(0x45); // version 4, IHL 5
        buf.put_u8(self.dscp_ecn);
        buf.put_u16(self.total_len);
        buf.put_u16(self.id);
        let mut flags_frag = self.frag_offset & 0x1fff;
        if self.dont_fragment {
            flags_frag |= 0x4000;
        }
        if self.more_fragments {
            flags_frag |= 0x2000;
        }
        buf.put_u16(flags_frag);
        buf.put_u8(self.ttl);
        buf.put_u8(self.proto.value());
        buf.put_u16(0); // checksum placeholder
        buf.put_slice(&self.src.0);
        buf.put_slice(&self.dst.0);
        let c = checksum(&buf[start..start + IPV4_HEADER_LEN]);
        buf[start + 10..start + 12].copy_from_slice(&c.to_be_bytes());
    }

    /// Parses a header, verifying version, IHL and checksum; returns the
    /// header and the remaining bytes (payload plus any trailing data).
    ///
    /// # Errors
    ///
    /// Returns an error when the buffer is truncated, the version is not 4,
    /// options are present (IHL ≠ 5), the total length is inconsistent, or
    /// the header checksum fails.
    pub fn parse(data: &[u8]) -> Result<(Ipv4Header, &[u8]), ParsePacketError> {
        if data.len() < IPV4_HEADER_LEN {
            return Err(ParsePacketError::Truncated {
                layer: "ipv4",
                needed: IPV4_HEADER_LEN,
                available: data.len(),
            });
        }
        let version = data[0] >> 4;
        if version != 4 {
            return Err(ParsePacketError::InvalidField {
                layer: "ipv4",
                field: "version",
                value: version as u64,
            });
        }
        let ihl = (data[0] & 0x0f) as usize;
        if ihl != 5 {
            return Err(ParsePacketError::InvalidField {
                layer: "ipv4",
                field: "ihl",
                value: ihl as u64,
            });
        }
        if checksum(&data[..IPV4_HEADER_LEN]) != 0 {
            return Err(ParsePacketError::BadChecksum { layer: "ipv4" });
        }
        let total_len = u16::from_be_bytes([data[2], data[3]]);
        if (total_len as usize) < IPV4_HEADER_LEN || (total_len as usize) > data.len() {
            return Err(ParsePacketError::InvalidField {
                layer: "ipv4",
                field: "total_len",
                value: total_len as u64,
            });
        }
        let flags_frag = u16::from_be_bytes([data[6], data[7]]);
        let hdr = Ipv4Header {
            dscp_ecn: data[1],
            total_len,
            id: u16::from_be_bytes([data[4], data[5]]),
            dont_fragment: flags_frag & 0x4000 != 0,
            more_fragments: flags_frag & 0x2000 != 0,
            frag_offset: flags_frag & 0x1fff,
            ttl: data[8],
            proto: data[9].into(),
            src: Ipv4Addr([data[12], data[13], data[14], data[15]]),
            dst: Ipv4Addr([data[16], data[17], data[18], data[19]]),
        };
        Ok((hdr, &data[IPV4_HEADER_LEN..]))
    }
}

/// Key identifying the datagram a fragment belongs to (RFC 791: src, dst,
/// protocol, identification).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FragmentKey {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Protocol.
    pub proto: u8,
    /// IP identification.
    pub id: u16,
}

impl FragmentKey {
    /// Extracts the key from a header.
    pub fn from_header(h: &Ipv4Header) -> Self {
        FragmentKey {
            src: h.src,
            dst: h.dst,
            proto: h.proto.value(),
            id: h.id,
        }
    }
}

/// Splits an IPv4 payload into fragments that fit within `mtu` (which bounds
/// the IP total length, i.e. header + payload per fragment).
///
/// Returns `(header, payload)` pairs ready to serialize.
///
/// # Panics
///
/// Panics if `mtu` cannot carry at least 8 bytes of payload, or if the
/// header has the don't-fragment bit set while fragmentation is required.
///
/// # Examples
///
/// ```
/// use fld_net::ipv4::{fragment, Ipv4Addr, Ipv4Header, IpProto};
/// use bytes::Bytes;
///
/// let hdr = Ipv4Header::simple(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2),
///                              IpProto::Udp, 3000);
/// let frags = fragment(&hdr, Bytes::from(vec![0u8; 3000]), 1500);
/// assert_eq!(frags.len(), 3);
/// assert!(frags[0].0.more_fragments);
/// assert!(!frags[2].0.more_fragments);
/// ```
pub fn fragment(hdr: &Ipv4Header, payload: Bytes, mtu: usize) -> Vec<(Ipv4Header, Bytes)> {
    let max_payload = mtu.saturating_sub(IPV4_HEADER_LEN);
    if payload.len() <= max_payload {
        let mut h = *hdr;
        h.total_len = (IPV4_HEADER_LEN + payload.len()) as u16;
        return vec![(h, payload)];
    }
    assert!(!hdr.dont_fragment, "DF set but fragmentation required");
    // Fragment payload sizes must be multiples of 8 except the last.
    let chunk = max_payload & !7;
    assert!(chunk >= 8, "mtu too small to fragment");
    let mut out = Vec::new();
    let mut offset = 0usize;
    while offset < payload.len() {
        let end = (offset + chunk).min(payload.len());
        let part = payload.slice(offset..end);
        let mut h = *hdr;
        h.total_len = (IPV4_HEADER_LEN + part.len()) as u16;
        h.frag_offset = hdr.frag_offset + (offset / 8) as u16;
        h.more_fragments = end < payload.len() || hdr.more_fragments;
        out.push((h, part));
        offset = end;
    }
    out
}

/// State for one partially reassembled datagram.
#[derive(Debug)]
struct PartialDatagram {
    /// Received byte ranges `(start, end)` of the payload, kept sorted and
    /// coalesced.
    ranges: Vec<(usize, usize)>,
    /// Payload bytes gathered so far.
    buffer: Vec<u8>,
    /// Total payload length, known once the last fragment arrives.
    total_len: Option<usize>,
    /// Header of the first fragment, reused for the reassembled datagram.
    first_header: Option<Ipv4Header>,
    /// Number of fragments absorbed.
    fragments: usize,
}

impl PartialDatagram {
    fn new() -> Self {
        PartialDatagram {
            ranges: Vec::new(),
            buffer: Vec::new(),
            total_len: None,
            first_header: None,
            fragments: 0,
        }
    }

    fn insert(&mut self, start: usize, data: &[u8]) {
        let end = start + data.len();
        if self.buffer.len() < end {
            self.buffer.resize(end, 0);
        }
        self.buffer[start..end].copy_from_slice(data);
        self.ranges.push((start, end));
        self.ranges.sort_unstable();
        // Coalesce overlapping/adjacent ranges.
        let mut merged: Vec<(usize, usize)> = Vec::with_capacity(self.ranges.len());
        for &(s, e) in &self.ranges {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        self.ranges = merged;
        self.fragments += 1;
    }

    fn is_complete(&self) -> bool {
        match (self.total_len, self.ranges.as_slice()) {
            (Some(len), [(0, end)]) => *end >= len,
            _ => false,
        }
    }
}

/// Result of offering a fragment to the [`Reassembler`].
#[derive(Debug)]
pub enum ReassemblyResult {
    /// The packet was not a fragment; it is returned untouched.
    NotFragment,
    /// The fragment was absorbed; the datagram is still incomplete.
    Pending,
    /// Reassembly finished: a complete datagram (header + full payload).
    Complete {
        /// Header for the reassembled datagram (fragment fields cleared,
        /// `total_len` covering the whole payload).
        header: Ipv4Header,
        /// The reassembled payload.
        payload: Bytes,
        /// Number of fragments combined.
        fragments: usize,
    },
}

/// An IPv4 reassembly engine, the functional core of the paper's IP
/// defragmentation accelerator.
///
/// The engine bounds its memory by `capacity` concurrent datagrams (the
/// hardware version stores them in BRAM/URAM); when full, the oldest entry
/// is evicted, mirroring a hardware replacement policy.
///
/// # Examples
///
/// ```
/// use fld_net::ipv4::{fragment, Ipv4Addr, Ipv4Header, IpProto, Reassembler, ReassemblyResult};
/// use bytes::Bytes;
///
/// let payload: Vec<u8> = (0..3000u32).map(|i| i as u8).collect();
/// let mut hdr = Ipv4Header::simple(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2),
///                                  IpProto::Udp, payload.len());
/// hdr.id = 7;
/// let mut r = Reassembler::new(64);
/// let mut done = None;
/// for (fh, fp) in fragment(&hdr, Bytes::from(payload.clone()), 1500) {
///     if let ReassemblyResult::Complete { payload, .. } = r.push(&fh, &fp) {
///         done = Some(payload);
///     }
/// }
/// assert_eq!(done.unwrap().as_ref(), payload.as_slice());
/// ```
#[derive(Debug)]
pub struct Reassembler {
    capacity: usize,
    /// Insertion-ordered table: acts as both the lookup structure and the
    /// FIFO eviction order.
    table: Vec<(FragmentKey, PartialDatagram)>,
    evictions: u64,
    completed: u64,
}

impl Reassembler {
    /// Creates a reassembler holding at most `capacity` concurrent datagrams.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Reassembler {
            capacity,
            table: Vec::new(),
            evictions: 0,
            completed: 0,
        }
    }

    /// Number of datagrams currently being reassembled.
    pub fn in_flight(&self) -> usize {
        self.table.len()
    }

    /// Number of datagrams evicted before completion.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Number of datagrams successfully reassembled.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Offers one packet; see [`ReassemblyResult`].
    pub fn push(&mut self, hdr: &Ipv4Header, payload: &[u8]) -> ReassemblyResult {
        if !hdr.is_fragment() {
            return ReassemblyResult::NotFragment;
        }
        let key = FragmentKey::from_header(hdr);
        let idx = match self.table.iter().position(|(k, _)| *k == key) {
            Some(i) => i,
            None => {
                if self.table.len() >= self.capacity {
                    self.table.remove(0);
                    self.evictions += 1;
                }
                self.table.push((key, PartialDatagram::new()));
                self.table.len() - 1
            }
        };
        let entry = &mut self.table[idx].1;
        let start = hdr.frag_offset as usize * 8;
        entry.insert(start, payload);
        if hdr.frag_offset == 0 {
            entry.first_header = Some(*hdr);
        }
        if !hdr.more_fragments {
            entry.total_len = Some(start + payload.len());
        }
        if entry.is_complete() {
            let (_, mut done) = self.table.remove(idx);
            self.completed += 1;
            let mut header = done
                .first_header
                .expect("complete datagram must include first fragment");
            let total = done.total_len.expect("complete datagram has known length");
            done.buffer.truncate(total);
            header.more_fragments = false;
            header.frag_offset = 0;
            header.total_len = (IPV4_HEADER_LEN + total) as u16;
            ReassemblyResult::Complete {
                header,
                payload: Bytes::from(done.buffer),
                fragments: done.fragments,
            }
        } else {
            ReassemblyResult::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_header(payload_len: usize) -> Ipv4Header {
        let mut h = Ipv4Header::simple(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            IpProto::Udp,
            payload_len,
        );
        h.id = 0x1234;
        h
    }

    #[test]
    fn header_round_trip() {
        let h = test_header(100);
        let mut buf = BytesMut::new();
        h.write(&mut buf);
        buf.put_slice(&[0u8; 100]);
        let (parsed, rest) = Ipv4Header::parse(&buf).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(rest.len(), 100);
    }

    #[test]
    fn checksum_must_verify() {
        let h = test_header(0);
        let mut buf = BytesMut::new();
        h.write(&mut buf);
        buf[8] ^= 0xff; // corrupt TTL
        assert!(matches!(
            Ipv4Header::parse(&buf),
            Err(ParsePacketError::BadChecksum { layer: "ipv4" })
        ));
    }

    #[test]
    fn rejects_wrong_version() {
        let h = test_header(0);
        let mut buf = BytesMut::new();
        h.write(&mut buf);
        buf[0] = 0x65; // version 6
        assert!(matches!(
            Ipv4Header::parse(&buf),
            Err(ParsePacketError::InvalidField {
                field: "version",
                ..
            })
        ));
    }

    #[test]
    fn fragment_no_op_below_mtu() {
        let h = test_header(1000);
        let frags = fragment(&h, Bytes::from(vec![0u8; 1000]), 1500);
        assert_eq!(frags.len(), 1);
        assert!(!frags[0].0.is_fragment());
    }

    #[test]
    fn fragment_offsets_are_eight_byte_aligned() {
        let h = test_header(4000);
        let frags = fragment(&h, Bytes::from(vec![0u8; 4000]), 1500);
        assert!(frags.len() >= 3);
        for (fh, fp) in &frags[..frags.len() - 1] {
            assert_eq!(fp.len() % 8, 0);
            assert!(fh.more_fragments);
        }
        // Offsets must chain exactly.
        let mut expect = 0;
        for (fh, fp) in &frags {
            assert_eq!(fh.frag_offset as usize * 8, expect);
            expect += fp.len();
        }
        assert_eq!(expect, 4000);
    }

    #[test]
    #[should_panic]
    fn fragment_respects_df() {
        let mut h = test_header(4000);
        h.dont_fragment = true;
        let _ = fragment(&h, Bytes::from(vec![0u8; 4000]), 1500);
    }

    #[test]
    fn reassembles_out_of_order() {
        let payload: Vec<u8> = (0..5000u32).map(|i| (i * 7) as u8).collect();
        let h = test_header(payload.len());
        let mut frags = fragment(&h, Bytes::from(payload.clone()), 1480);
        frags.reverse(); // worst-case arrival order
        let mut r = Reassembler::new(8);
        let mut complete = None;
        for (fh, fp) in &frags {
            match r.push(fh, fp) {
                ReassemblyResult::Complete {
                    payload,
                    header,
                    fragments,
                } => {
                    assert_eq!(fragments, frags.len());
                    assert!(!header.is_fragment());
                    complete = Some(payload);
                }
                ReassemblyResult::Pending => {}
                ReassemblyResult::NotFragment => panic!("fragments expected"),
            }
        }
        assert_eq!(complete.unwrap().as_ref(), payload.as_slice());
        assert_eq!(r.in_flight(), 0);
    }

    #[test]
    fn interleaved_datagrams() {
        let mut r = Reassembler::new(8);
        let pa: Vec<u8> = vec![0xaa; 3000];
        let pb: Vec<u8> = vec![0xbb; 3000];
        let mut ha = test_header(pa.len());
        ha.id = 1;
        let mut hb = test_header(pb.len());
        hb.id = 2;
        let fa = fragment(&ha, Bytes::from(pa.clone()), 1500);
        let fb = fragment(&hb, Bytes::from(pb.clone()), 1500);
        let mut done = 0;
        for (f1, f2) in fa.iter().zip(fb.iter()) {
            for (fh, fp) in [f1, f2] {
                if let ReassemblyResult::Complete { payload, .. } = r.push(fh, fp) {
                    assert!(payload.iter().all(|&b| b == payload[0]));
                    done += 1;
                }
            }
        }
        assert_eq!(done, 2);
        assert_eq!(r.completed(), 2);
    }

    #[test]
    fn duplicate_fragments_are_harmless() {
        let payload = vec![7u8; 3000];
        let h = test_header(payload.len());
        let frags = fragment(&h, Bytes::from(payload.clone()), 1500);
        let mut r = Reassembler::new(8);
        // Send the first fragment twice.
        assert!(matches!(
            r.push(&frags[0].0, &frags[0].1),
            ReassemblyResult::Pending
        ));
        assert!(matches!(
            r.push(&frags[0].0, &frags[0].1),
            ReassemblyResult::Pending
        ));
        let mut complete = false;
        for (fh, fp) in &frags[1..] {
            if let ReassemblyResult::Complete { payload: p, .. } = r.push(fh, fp) {
                assert_eq!(p.as_ref(), payload.as_slice());
                complete = true;
            }
        }
        assert!(complete);
    }

    #[test]
    fn capacity_eviction() {
        let mut r = Reassembler::new(2);
        for id in 0..3u16 {
            let mut h = test_header(3000);
            h.id = id;
            let frags = fragment(&h, Bytes::from(vec![0u8; 3000]), 1500);
            // Only push the first fragment -> entry stays in flight.
            r.push(&frags[0].0, &frags[0].1);
        }
        assert_eq!(r.in_flight(), 2);
        assert_eq!(r.evictions(), 1);
    }

    #[test]
    fn non_fragment_passes_through() {
        let h = test_header(100);
        let mut r = Reassembler::new(2);
        assert!(matches!(
            r.push(&h, &[0u8; 100]),
            ReassemblyResult::NotFragment
        ));
    }
}
