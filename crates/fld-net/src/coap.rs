//! Minimal CoAP (RFC 7252) message codec — enough to carry the JSON Web
//! Tokens validated by the IoT authentication accelerator (§ 7).

use bytes::{BufMut, BytesMut};

use crate::error::ParsePacketError;

/// CoAP message types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoapType {
    /// Confirmable.
    Confirmable,
    /// Non-confirmable.
    NonConfirmable,
    /// Acknowledgement.
    Ack,
    /// Reset.
    Reset,
}

impl CoapType {
    fn to_bits(self) -> u8 {
        match self {
            CoapType::Confirmable => 0,
            CoapType::NonConfirmable => 1,
            CoapType::Ack => 2,
            CoapType::Reset => 3,
        }
    }

    fn from_bits(b: u8) -> Self {
        match b & 3 {
            0 => CoapType::Confirmable,
            1 => CoapType::NonConfirmable,
            2 => CoapType::Ack,
            _ => CoapType::Reset,
        }
    }
}

/// A CoAP message (header, token, options as raw bytes, payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoapMessage {
    /// Message type.
    pub mtype: CoapType,
    /// Code: class.detail (e.g. 0.02 = POST).
    pub code: u8,
    /// Message ID.
    pub message_id: u16,
    /// Token (0–8 bytes).
    pub token: Vec<u8>,
    /// Encoded options (opaque to this codec).
    pub options: Vec<u8>,
    /// Payload (after the 0xFF marker).
    pub payload: Vec<u8>,
}

/// The CoAP POST method code (0.02).
pub const COAP_POST: u8 = 0x02;

impl CoapMessage {
    /// Creates a non-confirmable POST carrying `payload`.
    ///
    /// # Panics
    ///
    /// Panics if `token` is longer than 8 bytes.
    pub fn post(message_id: u16, token: &[u8], payload: Vec<u8>) -> Self {
        assert!(token.len() <= 8, "token too long");
        CoapMessage {
            mtype: CoapType::NonConfirmable,
            code: COAP_POST,
            message_id,
            token: token.to_vec(),
            options: Vec::new(),
            payload,
        }
    }

    /// Serialized length in bytes.
    pub fn encoded_len(&self) -> usize {
        4 + self.token.len()
            + self.options.len()
            + if self.payload.is_empty() {
                0
            } else {
                1 + self.payload.len()
            }
    }

    /// Serializes the message into `buf`.
    pub fn write(&self, buf: &mut BytesMut) {
        let ver_type_tkl = (1u8 << 6) | (self.mtype.to_bits() << 4) | (self.token.len() as u8);
        buf.put_u8(ver_type_tkl);
        buf.put_u8(self.code);
        buf.put_u16(self.message_id);
        buf.put_slice(&self.token);
        buf.put_slice(&self.options);
        if !self.payload.is_empty() {
            buf.put_u8(0xff);
            buf.put_slice(&self.payload);
        }
    }

    /// Parses a message from `data` (consumes the whole buffer).
    ///
    /// Options are not decoded; everything between the token and the 0xFF
    /// payload marker is preserved verbatim in `options`.
    ///
    /// # Errors
    ///
    /// Returns an error on truncation, a wrong protocol version, or an
    /// over-long token length field.
    pub fn parse(data: &[u8]) -> Result<CoapMessage, ParsePacketError> {
        if data.len() < 4 {
            return Err(ParsePacketError::Truncated {
                layer: "coap",
                needed: 4,
                available: data.len(),
            });
        }
        let version = data[0] >> 6;
        if version != 1 {
            return Err(ParsePacketError::InvalidField {
                layer: "coap",
                field: "version",
                value: version as u64,
            });
        }
        let tkl = (data[0] & 0x0f) as usize;
        if tkl > 8 {
            return Err(ParsePacketError::InvalidField {
                layer: "coap",
                field: "token_length",
                value: tkl as u64,
            });
        }
        if data.len() < 4 + tkl {
            return Err(ParsePacketError::Truncated {
                layer: "coap",
                needed: 4 + tkl,
                available: data.len(),
            });
        }
        let mtype = CoapType::from_bits(data[0] >> 4);
        let code = data[1];
        let message_id = u16::from_be_bytes([data[2], data[3]]);
        let token = data[4..4 + tkl].to_vec();
        let rest = &data[4 + tkl..];
        let (options, payload) = match rest.iter().position(|&b| b == 0xff) {
            Some(marker) => (rest[..marker].to_vec(), rest[marker + 1..].to_vec()),
            None => (rest.to_vec(), Vec::new()),
        };
        Ok(CoapMessage {
            mtype,
            code,
            message_id,
            token,
            options,
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_with_payload() {
        let msg = CoapMessage::post(0x4242, b"tok", b"the-jwt-goes-here".to_vec());
        let mut buf = BytesMut::new();
        msg.write(&mut buf);
        assert_eq!(buf.len(), msg.encoded_len());
        let parsed = CoapMessage::parse(&buf).unwrap();
        assert_eq!(parsed, msg);
    }

    #[test]
    fn round_trip_empty_payload() {
        let msg = CoapMessage::post(7, &[], Vec::new());
        let mut buf = BytesMut::new();
        msg.write(&mut buf);
        let parsed = CoapMessage::parse(&buf).unwrap();
        assert!(parsed.payload.is_empty());
        assert!(parsed.token.is_empty());
    }

    #[test]
    fn rejects_bad_version() {
        let buf = [0x00u8, 0x02, 0, 1];
        assert!(matches!(
            CoapMessage::parse(&buf),
            Err(ParsePacketError::InvalidField {
                field: "version",
                ..
            })
        ));
    }

    #[test]
    fn rejects_long_token_length() {
        let buf = [0x49u8, 0x02, 0, 1]; // version 1, TKL 9
        assert!(matches!(
            CoapMessage::parse(&buf),
            Err(ParsePacketError::InvalidField {
                field: "token_length",
                ..
            })
        ));
    }

    #[test]
    fn truncated_token() {
        let buf = [0x44u8, 0x02, 0, 1, 0xaa]; // TKL 4 but 1 byte present
        assert!(matches!(
            CoapMessage::parse(&buf),
            Err(ParsePacketError::Truncated { layer: "coap", .. })
        ));
    }

    #[test]
    #[should_panic]
    fn post_rejects_long_token() {
        let _ = CoapMessage::post(1, &[0u8; 9], Vec::new());
    }
}
