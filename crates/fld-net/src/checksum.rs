//! RFC 1071 Internet checksum, as offloaded by the NIC.

/// Incremental Internet-checksum accumulator.
///
/// # Examples
///
/// ```
/// use fld_net::checksum::Checksum;
///
/// let mut c = Checksum::new();
/// c.update(&[0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7]);
/// assert_eq!(c.finish(), 0x220d);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Checksum {
    sum: u32,
    /// A pending odd byte from the previous update call.
    pending: Option<u8>,
}

impl Checksum {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Checksum::default()
    }

    /// Feeds bytes into the checksum.
    pub fn update(&mut self, mut data: &[u8]) {
        if let Some(hi) = self.pending.take() {
            if let Some((&lo, rest)) = data.split_first() {
                self.add_word(u16::from_be_bytes([hi, lo]));
                data = rest;
            } else {
                self.pending = Some(hi);
                return;
            }
        }
        let mut chunks = data.chunks_exact(2);
        for w in &mut chunks {
            self.add_word(u16::from_be_bytes([w[0], w[1]]));
        }
        if let [last] = chunks.remainder() {
            self.pending = Some(*last);
        }
    }

    fn add_word(&mut self, w: u16) {
        self.sum += w as u32;
    }

    /// Feeds one big-endian 16-bit word.
    pub fn update_u16(&mut self, w: u16) {
        self.update(&w.to_be_bytes());
    }

    /// Feeds one big-endian 32-bit word.
    pub fn update_u32(&mut self, w: u32) {
        self.update(&w.to_be_bytes());
    }

    /// Finalizes and returns the one's-complement checksum.
    pub fn finish(mut self) -> u16 {
        if let Some(hi) = self.pending.take() {
            self.add_word(u16::from_be_bytes([hi, 0]));
        }
        let mut s = self.sum;
        while s > 0xffff {
            s = (s & 0xffff) + (s >> 16);
        }
        !(s as u16)
    }
}

/// One-shot checksum over a byte slice.
pub fn checksum(data: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.update(data);
    c.finish()
}

/// Verifies that a buffer containing its own checksum field sums to zero.
pub fn verify(data: &[u8]) -> bool {
    checksum(data) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // Classic example from RFC 1071 §3.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length() {
        // Odd trailing byte is padded with zero.
        assert_eq!(checksum(&[0xab]), !0xab00);
    }

    #[test]
    fn verify_round_trip() {
        // An IPv4-like header: compute checksum, insert, verify.
        let mut hdr = vec![
            0x45u8, 0x00, 0x00, 0x54, 0x12, 0x34, 0x40, 0x00, 0x40, 0x01, 0x00, 0x00, 0x0a, 0x00,
            0x00, 0x01, 0x0a, 0x00, 0x00, 0x02,
        ];
        let c = checksum(&hdr);
        hdr[10..12].copy_from_slice(&c.to_be_bytes());
        assert!(verify(&hdr));
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..255u8).collect();
        let mut inc = Checksum::new();
        // Split at an odd boundary to exercise the pending-byte path.
        inc.update(&data[..7]);
        inc.update(&data[7..100]);
        inc.update(&data[100..]);
        assert_eq!(inc.finish(), checksum(&data));
    }

    #[test]
    fn empty_is_all_ones() {
        assert_eq!(checksum(&[]), 0xffff);
    }

    #[test]
    fn word_helpers_match_bytes() {
        let mut a = Checksum::new();
        a.update_u32(0xdead_beef);
        a.update_u16(0x0102);
        let mut b = Checksum::new();
        b.update(&[0xde, 0xad, 0xbe, 0xef, 0x01, 0x02]);
        assert_eq!(a.finish(), b.finish());
    }
}
