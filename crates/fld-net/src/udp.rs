//! UDP header handling.

use bytes::{BufMut, BytesMut};

use crate::checksum::Checksum;
use crate::error::ParsePacketError;
use crate::ipv4::{IpProto, Ipv4Addr};

/// Length of a UDP header.
pub const UDP_HEADER_LEN: usize = 8;

/// A UDP header.
///
/// # Examples
///
/// ```
/// use fld_net::udp::UdpHeader;
///
/// let h = UdpHeader::new(1234, 4791, 16);
/// assert_eq!(h.length as usize, 8 + 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Header + payload length.
    pub length: u16,
    /// Checksum (0 = not computed).
    pub checksum: u16,
}

impl UdpHeader {
    /// Creates a header for `payload_len` bytes of payload, checksum unset.
    pub fn new(src_port: u16, dst_port: u16, payload_len: usize) -> Self {
        UdpHeader {
            src_port,
            dst_port,
            length: (UDP_HEADER_LEN + payload_len) as u16,
            checksum: 0,
        }
    }

    /// Serializes the header into `buf`.
    pub fn write(&self, buf: &mut BytesMut) {
        buf.put_u16(self.src_port);
        buf.put_u16(self.dst_port);
        buf.put_u16(self.length);
        buf.put_u16(self.checksum);
    }

    /// Parses a header, returning it and the remaining bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ParsePacketError::Truncated`] if fewer than 8 bytes remain,
    /// or [`ParsePacketError::InvalidField`] for an impossible length field.
    pub fn parse(data: &[u8]) -> Result<(UdpHeader, &[u8]), ParsePacketError> {
        if data.len() < UDP_HEADER_LEN {
            return Err(ParsePacketError::Truncated {
                layer: "udp",
                needed: UDP_HEADER_LEN,
                available: data.len(),
            });
        }
        let length = u16::from_be_bytes([data[4], data[5]]);
        if (length as usize) < UDP_HEADER_LEN {
            return Err(ParsePacketError::InvalidField {
                layer: "udp",
                field: "length",
                value: length as u64,
            });
        }
        Ok((
            UdpHeader {
                src_port: u16::from_be_bytes([data[0], data[1]]),
                dst_port: u16::from_be_bytes([data[2], data[3]]),
                length,
                checksum: u16::from_be_bytes([data[6], data[7]]),
            },
            &data[UDP_HEADER_LEN..],
        ))
    }

    /// Computes the UDP checksum over the IPv4 pseudo-header and payload —
    /// the computation the NIC's L4 checksum offload performs (and the one
    /// that breaks on IP fragments, motivating the defrag accelerator).
    pub fn compute_checksum(&self, src: Ipv4Addr, dst: Ipv4Addr, payload: &[u8]) -> u16 {
        let mut c = Checksum::new();
        c.update(&src.0);
        c.update(&dst.0);
        c.update(&[0, IpProto::Udp.value()]);
        c.update_u16(self.length);
        c.update_u16(self.src_port);
        c.update_u16(self.dst_port);
        c.update_u16(self.length);
        // checksum field treated as zero
        c.update(payload);
        let v = c.finish();
        // Per RFC 768, an all-zero computed checksum is sent as 0xFFFF.
        if v == 0 {
            0xffff
        } else {
            v
        }
    }

    /// Verifies the checksum (a zero stored checksum means "unset" and
    /// passes).
    pub fn verify_checksum(&self, src: Ipv4Addr, dst: Ipv4Addr, payload: &[u8]) -> bool {
        if self.checksum == 0 {
            return true;
        }
        let mut h = *self;
        h.checksum = 0;
        let want = h.compute_checksum(src, dst, payload);
        want == self.checksum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let h = UdpHeader::new(5000, 4791, 32);
        let mut buf = BytesMut::new();
        h.write(&mut buf);
        let (parsed, rest) = UdpHeader::parse(&buf).unwrap();
        assert_eq!(parsed, h);
        assert!(rest.is_empty());
    }

    #[test]
    fn truncated() {
        assert!(matches!(
            UdpHeader::parse(&[0u8; 4]),
            Err(ParsePacketError::Truncated { layer: "udp", .. })
        ));
    }

    #[test]
    fn bogus_length_rejected() {
        let mut buf = BytesMut::new();
        UdpHeader::new(1, 2, 0).write(&mut buf);
        buf[4] = 0;
        buf[5] = 3; // length 3 < 8
        assert!(matches!(
            UdpHeader::parse(&buf),
            Err(ParsePacketError::InvalidField {
                field: "length",
                ..
            })
        ));
    }

    #[test]
    fn checksum_verifies() {
        let src = Ipv4Addr::new(192, 168, 0, 1);
        let dst = Ipv4Addr::new(192, 168, 0, 2);
        let payload = b"hello world";
        let mut h = UdpHeader::new(1111, 2222, payload.len());
        h.checksum = h.compute_checksum(src, dst, payload);
        assert_ne!(h.checksum, 0);
        assert!(h.verify_checksum(src, dst, payload));
        // Corrupt payload -> fails.
        assert!(!h.verify_checksum(src, dst, b"hello worle"));
    }

    #[test]
    fn zero_checksum_passes() {
        let h = UdpHeader::new(1, 2, 4);
        assert!(h.verify_checksum(
            Ipv4Addr::new(1, 2, 3, 4),
            Ipv4Addr::new(4, 3, 2, 1),
            b"abcd"
        ));
    }
}
