//! Error type shared by all parsers in the crate.

use std::error::Error;
use std::fmt;

/// An error produced when parsing a packet header fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParsePacketError {
    /// The buffer is shorter than the header requires.
    Truncated {
        /// Protocol layer that failed to parse.
        layer: &'static str,
        /// Bytes required by the header.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A field holds a value the parser cannot accept.
    InvalidField {
        /// Protocol layer that failed to parse.
        layer: &'static str,
        /// Field name.
        field: &'static str,
        /// Offending value.
        value: u64,
    },
    /// A checksum did not verify.
    BadChecksum {
        /// Protocol layer whose checksum failed.
        layer: &'static str,
    },
}

impl fmt::Display for ParsePacketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParsePacketError::Truncated {
                layer,
                needed,
                available,
            } => write!(
                f,
                "{layer} header truncated: need {needed} bytes, have {available}"
            ),
            ParsePacketError::InvalidField {
                layer,
                field,
                value,
            } => {
                write!(f, "{layer} field {field} has invalid value {value}")
            }
            ParsePacketError::BadChecksum { layer } => {
                write!(f, "{layer} checksum mismatch")
            }
        }
    }
}

impl Error for ParsePacketError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ParsePacketError::Truncated {
            layer: "ipv4",
            needed: 20,
            available: 3,
        };
        assert_eq!(
            e.to_string(),
            "ipv4 header truncated: need 20 bytes, have 3"
        );
        let e = ParsePacketError::InvalidField {
            layer: "ipv4",
            field: "version",
            value: 6,
        };
        assert!(e.to_string().contains("version"));
        let e = ParsePacketError::BadChecksum { layer: "udp" };
        assert!(e.to_string().contains("udp"));
    }
}
