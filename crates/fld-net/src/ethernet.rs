//! Ethernet II framing.

use std::fmt;

use bytes::{BufMut, BytesMut};

use crate::error::ParsePacketError;

/// Length of an Ethernet II header (dst + src + ethertype).
pub const ETHERNET_HEADER_LEN: usize = 14;

/// Per-frame wire overhead that never appears in the buffer: 7 B preamble,
/// 1 B SFD, 4 B FCS and 12 B inter-frame gap.
pub const ETHERNET_WIRE_OVERHEAD: u64 = 24;

/// The per-packet overhead the FlexDriver paper uses when computing packet
/// rates (Table 2a uses `M_min + 20 B`): preamble+SFD+IFG, with the FCS
/// counted inside the frame.
pub const PAPER_WIRE_OVERHEAD: u64 = 20;

/// Minimum Ethernet frame size (without FCS).
pub const ETHERNET_MIN_FRAME: usize = 60;

/// A 48-bit MAC address.
///
/// # Examples
///
/// ```
/// use fld_net::ethernet::MacAddr;
///
/// let m = MacAddr::new([0x02, 0, 0, 0, 0, 0x01]);
/// assert_eq!(m.to_string(), "02:00:00:00:00:01");
/// assert!(!m.is_broadcast());
/// assert!(MacAddr::BROADCAST.is_broadcast());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The all-ones broadcast address.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// Creates an address from raw octets.
    pub const fn new(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }

    /// A locally-administered unicast address derived from a small id,
    /// convenient for simulations.
    pub const fn local(id: u32) -> Self {
        let b = id.to_be_bytes();
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }

    /// The raw octets.
    pub const fn octets(self) -> [u8; 6] {
        self.0
    }

    /// Whether this is the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == MacAddr::BROADCAST
    }

    /// Whether the group (multicast) bit is set.
    pub fn is_multicast(self) -> bool {
        self.0[0] & 0x01 != 0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

impl From<[u8; 6]> for MacAddr {
    fn from(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }
}

/// Well-known EtherType values used by the models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4,
    /// ARP (0x0806).
    Arp,
    /// IPv6 (0x86DD).
    Ipv6,
    /// Anything else.
    Other(u16),
}

impl EtherType {
    /// The numeric EtherType.
    pub fn value(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Ipv6 => 0x86DD,
            EtherType::Other(v) => v,
        }
    }
}

impl From<u16> for EtherType {
    fn from(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            0x86DD => EtherType::Ipv6,
            other => EtherType::Other(other),
        }
    }
}

/// An Ethernet II header.
///
/// # Examples
///
/// ```
/// use fld_net::ethernet::{EtherType, EthernetHeader, MacAddr};
///
/// let hdr = EthernetHeader {
///     dst: MacAddr::local(1),
///     src: MacAddr::local(2),
///     ethertype: EtherType::Ipv4,
/// };
/// let mut buf = bytes::BytesMut::new();
/// hdr.write(&mut buf);
/// let (parsed, rest) = EthernetHeader::parse(&buf)?;
/// assert_eq!(parsed, hdr);
/// assert!(rest.is_empty());
/// # Ok::<(), fld_net::error::ParsePacketError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EthernetHeader {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// Payload EtherType.
    pub ethertype: EtherType,
}

impl EthernetHeader {
    /// Serializes the header into `buf`.
    pub fn write(&self, buf: &mut BytesMut) {
        buf.put_slice(&self.dst.0);
        buf.put_slice(&self.src.0);
        buf.put_u16(self.ethertype.value());
    }

    /// Parses a header, returning it together with the remaining bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ParsePacketError::Truncated`] when fewer than 14 bytes are
    /// available.
    pub fn parse(data: &[u8]) -> Result<(EthernetHeader, &[u8]), ParsePacketError> {
        if data.len() < ETHERNET_HEADER_LEN {
            return Err(ParsePacketError::Truncated {
                layer: "ethernet",
                needed: ETHERNET_HEADER_LEN,
                available: data.len(),
            });
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&data[0..6]);
        src.copy_from_slice(&data[6..12]);
        let ethertype = u16::from_be_bytes([data[12], data[13]]).into();
        Ok((
            EthernetHeader {
                dst: MacAddr(dst),
                src: MacAddr(src),
                ethertype,
            },
            &data[ETHERNET_HEADER_LEN..],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let hdr = EthernetHeader {
            dst: MacAddr::BROADCAST,
            src: MacAddr::local(42),
            ethertype: EtherType::Other(0x88B5),
        };
        let mut buf = BytesMut::new();
        hdr.write(&mut buf);
        assert_eq!(buf.len(), ETHERNET_HEADER_LEN);
        let (parsed, rest) = EthernetHeader::parse(&buf).unwrap();
        assert_eq!(parsed, hdr);
        assert!(rest.is_empty());
    }

    #[test]
    fn truncated_header_is_rejected() {
        let err = EthernetHeader::parse(&[0u8; 5]).unwrap_err();
        assert!(matches!(
            err,
            ParsePacketError::Truncated {
                layer: "ethernet",
                ..
            }
        ));
    }

    #[test]
    fn ethertype_mapping() {
        assert_eq!(EtherType::from(0x0800), EtherType::Ipv4);
        assert_eq!(EtherType::Ipv4.value(), 0x0800);
        assert_eq!(EtherType::from(0x1234), EtherType::Other(0x1234));
        assert_eq!(EtherType::Other(0x1234).value(), 0x1234);
    }

    #[test]
    fn mac_properties() {
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::local(3).is_multicast());
        assert_eq!(MacAddr::local(1), MacAddr::local(1));
        assert_ne!(MacAddr::local(1), MacAddr::local(2));
    }

    #[test]
    fn parse_keeps_payload() {
        let hdr = EthernetHeader {
            dst: MacAddr::local(1),
            src: MacAddr::local(2),
            ethertype: EtherType::Ipv4,
        };
        let mut buf = BytesMut::new();
        hdr.write(&mut buf);
        buf.put_slice(b"payload");
        let (_, rest) = EthernetHeader::parse(&buf).unwrap();
        assert_eq!(rest, b"payload");
    }
}
