//! Whole-frame builders and parsers, combining the per-layer codecs.
//!
//! These operate on real bytes and back the *functional* paths of the
//! simulation (accelerators that actually parse/transform packets), while
//! the performance models mostly track sizes and metadata.

use bytes::{BufMut, Bytes, BytesMut};

use crate::error::ParsePacketError;
use crate::ethernet::{EtherType, EthernetHeader, MacAddr, ETHERNET_HEADER_LEN};
use crate::flow::FlowKey;
use crate::ipv4::{fragment, IpProto, Ipv4Addr, Ipv4Header, IPV4_HEADER_LEN};
use crate::tcp::TcpHeader;
use crate::udp::{UdpHeader, UDP_HEADER_LEN};
use crate::vxlan::{VxlanHeader, VXLAN_UDP_PORT};

/// Transport-layer view of a parsed frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum L4 {
    /// UDP header.
    Udp(UdpHeader),
    /// TCP header.
    Tcp(TcpHeader),
    /// Unparsed transport (fragment tail or unknown protocol).
    Raw,
}

/// A parsed Ethernet/IPv4 frame.
#[derive(Debug, Clone)]
pub struct ParsedFrame {
    /// Ethernet header.
    pub eth: EthernetHeader,
    /// IPv4 header (when EtherType is IPv4).
    pub ip: Option<Ipv4Header>,
    /// Transport header.
    pub l4: L4,
    /// L4 payload (or IP payload for `L4::Raw`).
    pub payload: Bytes,
}

impl ParsedFrame {
    /// Parses a full frame.
    ///
    /// Non-first IP fragments and unknown protocols yield [`L4::Raw`].
    ///
    /// # Errors
    ///
    /// Propagates header parse errors from each layer.
    pub fn parse(data: &[u8]) -> Result<ParsedFrame, ParsePacketError> {
        let (eth, rest) = EthernetHeader::parse(data)?;
        if eth.ethertype != EtherType::Ipv4 {
            return Ok(ParsedFrame {
                eth,
                ip: None,
                l4: L4::Raw,
                payload: Bytes::copy_from_slice(rest),
            });
        }
        let (ip, rest) = Ipv4Header::parse(rest)?;
        let ip_payload = &rest[..ip.payload_len().min(rest.len())];
        // Fragments (including the first) are left unparsed at L4: the
        // transport header is either absent or spans a partial datagram —
        // exactly the situation that breaks NIC L4 offloads (§ 8.2.2).
        if ip.is_fragment() {
            return Ok(ParsedFrame {
                eth,
                ip: Some(ip),
                l4: L4::Raw,
                payload: Bytes::copy_from_slice(ip_payload),
            });
        }
        match ip.proto {
            IpProto::Udp => {
                let (udp, payload) = UdpHeader::parse(ip_payload)?;
                Ok(ParsedFrame {
                    eth,
                    ip: Some(ip),
                    l4: L4::Udp(udp),
                    payload: Bytes::copy_from_slice(payload),
                })
            }
            IpProto::Tcp => {
                let (tcp, payload) = TcpHeader::parse(ip_payload)?;
                Ok(ParsedFrame {
                    eth,
                    ip: Some(ip),
                    l4: L4::Tcp(tcp),
                    payload: Bytes::copy_from_slice(payload),
                })
            }
            _ => Ok(ParsedFrame {
                eth,
                ip: Some(ip),
                l4: L4::Raw,
                payload: Bytes::copy_from_slice(ip_payload),
            }),
        }
    }

    /// The flow key of this frame (ports zero for `L4::Raw`).
    pub fn flow_key(&self) -> Option<FlowKey> {
        let ip = self.ip.as_ref()?;
        Some(match &self.l4 {
            L4::Udp(u) => FlowKey::from_udp(ip, u),
            L4::Tcp(t) => FlowKey::from_tcp(ip, t),
            L4::Raw => FlowKey::l3_only(ip),
        })
    }
}

/// Endpoint addresses used when building frames.
#[derive(Debug, Clone, Copy)]
pub struct Endpoints {
    /// Source MAC.
    pub src_mac: MacAddr,
    /// Destination MAC.
    pub dst_mac: MacAddr,
    /// Source IP.
    pub src_ip: Ipv4Addr,
    /// Destination IP.
    pub dst_ip: Ipv4Addr,
}

impl Endpoints {
    /// Simulation-friendly endpoints derived from small ids.
    pub fn sim(src_id: u32, dst_id: u32) -> Self {
        Endpoints {
            src_mac: MacAddr::local(src_id),
            dst_mac: MacAddr::local(dst_id),
            src_ip: Ipv4Addr::from(0x0a00_0000 | src_id),
            dst_ip: Ipv4Addr::from(0x0a00_0000 | dst_id),
        }
    }
}

/// Builds a UDP/IPv4/Ethernet frame, computing the UDP checksum.
pub fn build_udp_frame(ep: &Endpoints, src_port: u16, dst_port: u16, payload: &[u8]) -> Bytes {
    let mut udp = UdpHeader::new(src_port, dst_port, payload.len());
    udp.checksum = udp.compute_checksum(ep.src_ip, ep.dst_ip, payload);
    let ip = Ipv4Header::simple(
        ep.src_ip,
        ep.dst_ip,
        IpProto::Udp,
        UDP_HEADER_LEN + payload.len(),
    );
    let eth = EthernetHeader {
        dst: ep.dst_mac,
        src: ep.src_mac,
        ethertype: EtherType::Ipv4,
    };
    let mut buf = BytesMut::with_capacity(ETHERNET_HEADER_LEN + ip.total_len as usize);
    eth.write(&mut buf);
    ip.write(&mut buf);
    udp.write(&mut buf);
    buf.put_slice(payload);
    buf.freeze()
}

/// Builds a TCP/IPv4/Ethernet data segment.
pub fn build_tcp_frame(
    ep: &Endpoints,
    src_port: u16,
    dst_port: u16,
    seq: u32,
    payload: &[u8],
) -> Bytes {
    let tcp = TcpHeader::data(src_port, dst_port, seq);
    let ip = Ipv4Header::simple(
        ep.src_ip,
        ep.dst_ip,
        IpProto::Tcp,
        crate::tcp::TCP_HEADER_LEN + payload.len(),
    );
    let eth = EthernetHeader {
        dst: ep.dst_mac,
        src: ep.src_mac,
        ethertype: EtherType::Ipv4,
    };
    let mut buf = BytesMut::with_capacity(ETHERNET_HEADER_LEN + ip.total_len as usize);
    eth.write(&mut buf);
    ip.write(&mut buf);
    tcp.write(&mut buf);
    buf.put_slice(payload);
    buf.freeze()
}

/// Splits an IPv4 frame into fragment frames that each fit `mtu` (IP total
/// length bound). Returns the original frame if it already fits.
///
/// # Errors
///
/// Fails if the frame does not parse as Ethernet + IPv4.
pub fn fragment_frame(
    frame: &[u8],
    mtu: usize,
    ip_id: u16,
) -> Result<Vec<Bytes>, ParsePacketError> {
    let (eth, rest) = EthernetHeader::parse(frame)?;
    let (mut ip, rest) = Ipv4Header::parse(rest)?;
    ip.id = ip_id;
    let payload = Bytes::copy_from_slice(&rest[..ip.payload_len().min(rest.len())]);
    let frags = fragment(&ip, payload, mtu);
    Ok(frags
        .into_iter()
        .map(|(fh, fp)| {
            let mut buf = BytesMut::with_capacity(ETHERNET_HEADER_LEN + fh.total_len as usize);
            eth.write(&mut buf);
            fh.write(&mut buf);
            buf.put_slice(&fp);
            buf.freeze()
        })
        .collect())
}

/// Encapsulates a full inner frame in VXLAN/UDP/IPv4/Ethernet using outer
/// endpoints `outer` and network id `vni` — the tunnel the NIC's
/// decapsulation offload strips in § 8.2.2.
pub fn vxlan_encap(outer: &Endpoints, vni: u32, inner_frame: &[u8], src_port: u16) -> Bytes {
    let vx = VxlanHeader::new(vni);
    let inner_len = crate::vxlan::VXLAN_HEADER_LEN + inner_frame.len();
    let udp = UdpHeader::new(src_port, VXLAN_UDP_PORT, inner_len);
    let ip = Ipv4Header::simple(
        outer.src_ip,
        outer.dst_ip,
        IpProto::Udp,
        UDP_HEADER_LEN + inner_len,
    );
    let eth = EthernetHeader {
        dst: outer.dst_mac,
        src: outer.src_mac,
        ethertype: EtherType::Ipv4,
    };
    let mut buf = BytesMut::with_capacity(ETHERNET_HEADER_LEN + ip.total_len as usize);
    eth.write(&mut buf);
    ip.write(&mut buf);
    udp.write(&mut buf);
    vx.write(&mut buf);
    buf.put_slice(inner_frame);
    buf.freeze()
}

/// Strips a VXLAN tunnel, returning `(vni, inner frame bytes)`.
///
/// # Errors
///
/// Fails when the frame is not a well-formed VXLAN-over-UDP packet.
pub fn vxlan_decap(frame: &[u8]) -> Result<(u32, Bytes), ParsePacketError> {
    let (_, rest) = EthernetHeader::parse(frame)?;
    let (ip, rest) = Ipv4Header::parse(rest)?;
    let (udp, rest) = UdpHeader::parse(&rest[..ip.payload_len().min(rest.len())])?;
    if udp.dst_port != VXLAN_UDP_PORT {
        return Err(ParsePacketError::InvalidField {
            layer: "vxlan",
            field: "udp_dst_port",
            value: udp.dst_port as u64,
        });
    }
    let (vx, inner) = VxlanHeader::parse(rest)?;
    Ok((vx.vni, Bytes::copy_from_slice(inner)))
}

/// Total frame length for a UDP packet with `payload` bytes of L4 payload.
pub const fn udp_frame_len(payload: usize) -> usize {
    ETHERNET_HEADER_LEN + IPV4_HEADER_LEN + UDP_HEADER_LEN + payload
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn udp_frame_round_trip() {
        let ep = Endpoints::sim(1, 2);
        let frame = build_udp_frame(&ep, 1000, 2000, b"ping");
        assert_eq!(frame.len(), udp_frame_len(4));
        let parsed = ParsedFrame::parse(&frame).unwrap();
        assert_eq!(parsed.eth.src, ep.src_mac);
        let ip = parsed.ip.unwrap();
        assert_eq!(ip.src, ep.src_ip);
        match parsed.l4 {
            L4::Udp(u) => {
                assert_eq!(u.dst_port, 2000);
                assert!(u.verify_checksum(ip.src, ip.dst, &parsed.payload));
            }
            other => panic!("expected udp, got {other:?}"),
        }
        assert_eq!(parsed.payload.as_ref(), b"ping");
    }

    #[test]
    fn tcp_frame_round_trip() {
        let ep = Endpoints::sim(3, 4);
        let frame = build_tcp_frame(&ep, 40000, 5201, 777, &[9u8; 100]);
        let parsed = ParsedFrame::parse(&frame).unwrap();
        match parsed.l4 {
            L4::Tcp(t) => assert_eq!(t.seq, 777),
            other => panic!("expected tcp, got {other:?}"),
        }
        let key = parsed.flow_key().unwrap();
        assert_eq!(key.dst_port, 5201);
        assert_eq!(key.proto, 6);
    }

    #[test]
    fn fragment_and_reassemble_frames() {
        use crate::ipv4::{Reassembler, ReassemblyResult};
        let ep = Endpoints::sim(1, 2);
        let payload: Vec<u8> = (0..4000u32).map(|i| i as u8).collect();
        let frame = build_udp_frame(&ep, 10, 20, &payload);
        let frags = fragment_frame(&frame, 1500, 99).unwrap();
        assert!(frags.len() > 1);
        for f in &frags {
            assert!(f.len() <= ETHERNET_HEADER_LEN + 1500);
        }
        // Non-first fragments must parse with L4::Raw (ports unavailable).
        let second = ParsedFrame::parse(&frags[1]).unwrap();
        assert!(matches!(second.l4, L4::Raw));
        assert_eq!(second.flow_key().unwrap().src_port, 0);

        let mut r = Reassembler::new(4);
        let mut out = None;
        for f in &frags {
            let p = ParsedFrame::parse(f).unwrap();
            let ip = p.ip.unwrap();
            if let ReassemblyResult::Complete { payload, .. } = r.push(&ip, &p.payload) {
                out = Some(payload);
            }
        }
        let full = out.expect("reassembly must complete");
        // The reassembled IP payload = UDP header + original payload.
        let (udp, data) = UdpHeader::parse(&full).unwrap();
        assert_eq!(udp.dst_port, 20);
        assert_eq!(data, payload.as_slice());
    }

    #[test]
    fn vxlan_encap_decap() {
        let inner_ep = Endpoints::sim(10, 11);
        let inner = build_udp_frame(&inner_ep, 1, 2, b"inner");
        let outer_ep = Endpoints::sim(100, 101);
        let tunneled = vxlan_encap(&outer_ep, 42, &inner, 55555);
        let (vni, decapped) = vxlan_decap(&tunneled).unwrap();
        assert_eq!(vni, 42);
        assert_eq!(decapped.as_ref(), inner.as_ref());
    }

    #[test]
    fn vxlan_decap_rejects_plain_udp() {
        let ep = Endpoints::sim(1, 2);
        let frame = build_udp_frame(&ep, 1, 2, b"x");
        assert!(vxlan_decap(&frame).is_err());
    }

    #[test]
    fn non_ip_frame_parses_raw() {
        let eth = EthernetHeader {
            dst: MacAddr::local(1),
            src: MacAddr::local(2),
            ethertype: EtherType::Arp,
        };
        let mut buf = BytesMut::new();
        eth.write(&mut buf);
        buf.put_slice(&[0u8; 28]);
        let parsed = ParsedFrame::parse(&buf).unwrap();
        assert!(parsed.ip.is_none());
        assert!(parsed.flow_key().is_none());
    }
}
