//! # fld-net — packet formats and network algorithms
//!
//! The networking substrate of the FlexDriver (ASPLOS 2022) reproduction:
//! byte-accurate codecs for every protocol layer the paper's system touches,
//! plus the algorithms behind the NIC offloads it leverages.
//!
//! * [`ethernet`], [`ipv4`], [`udp`], [`tcp`] — the classic stack;
//! * [`ipv4`] also hosts fragmentation and the [`ipv4::Reassembler`] that
//!   powers the inline defragmentation accelerator (paper § 7);
//! * [`vxlan`] — the tunnel the NIC decapsulates before handing fragments to
//!   the accelerator (§ 8.2.2);
//! * [`roce`] — RoCE v2 Base Transport Header framing used by FLD-R;
//! * [`coap`] — the IoT message format carrying JSON Web Tokens (§ 7);
//! * [`toeplitz`] — RSS hashing, validated against the Microsoft test
//!   vectors;
//! * [`checksum`] — RFC 1071 Internet checksums (the NIC's L4 offload);
//! * [`flow`], [`frame`] — flow keys and whole-frame builders/parsers.
//!
//! # Examples
//!
//! ```
//! use fld_net::frame::{build_udp_frame, Endpoints, ParsedFrame, L4};
//!
//! let ep = Endpoints::sim(1, 2);
//! let frame = build_udp_frame(&ep, 1234, 4791, b"payload");
//! let parsed = ParsedFrame::parse(&frame)?;
//! assert!(matches!(parsed.l4, L4::Udp(_)));
//! # Ok::<(), fld_net::error::ParsePacketError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checksum;
pub mod coap;
pub mod error;
pub mod ethernet;
pub mod flow;
pub mod frame;
pub mod ipv4;
pub mod roce;
pub mod tcp;
pub mod toeplitz;
pub mod udp;
pub mod vxlan;

pub use error::ParsePacketError;
pub use ethernet::{EtherType, EthernetHeader, MacAddr};
pub use flow::FlowKey;
pub use frame::{Endpoints, ParsedFrame, L4};
pub use ipv4::{IpProto, Ipv4Addr, Ipv4Header, Reassembler, ReassemblyResult};
pub use toeplitz::Toeplitz;
