//! RoCE v2 framing: the InfiniBand Base Transport Header (BTH) carried over
//! UDP port 4791, as produced and consumed by the NIC's hardware RDMA
//! transport (§ 2.1, § 5 FLD-R).

use bytes::{BufMut, BytesMut};

use crate::error::ParsePacketError;

/// Length of a Base Transport Header.
pub const BTH_LEN: usize = 12;

/// The IANA-assigned RoCE v2 UDP destination port.
pub const ROCE_UDP_PORT: u16 = 4791;

/// Length of the invariant CRC trailer on RoCE packets.
pub const ICRC_LEN: usize = 4;

/// RC-transport opcodes needed by the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BthOpcode {
    /// RC SEND First.
    SendFirst,
    /// RC SEND Middle.
    SendMiddle,
    /// RC SEND Last.
    SendLast,
    /// RC SEND Only (single-packet message).
    SendOnly,
    /// RC Acknowledge.
    Ack,
    /// RC RDMA WRITE First.
    WriteFirst,
    /// RC RDMA WRITE Middle.
    WriteMiddle,
    /// RC RDMA WRITE Last.
    WriteLast,
    /// RC RDMA WRITE Only.
    WriteOnly,
}

impl BthOpcode {
    /// Numeric opcode (IBTA RC opcodes).
    pub fn value(self) -> u8 {
        match self {
            BthOpcode::SendFirst => 0x00,
            BthOpcode::SendMiddle => 0x01,
            BthOpcode::SendLast => 0x02,
            BthOpcode::SendOnly => 0x04,
            BthOpcode::Ack => 0x11,
            BthOpcode::WriteFirst => 0x06,
            BthOpcode::WriteMiddle => 0x07,
            BthOpcode::WriteLast => 0x08,
            BthOpcode::WriteOnly => 0x0a,
        }
    }

    /// Decodes a numeric opcode.
    pub fn from_value(v: u8) -> Option<Self> {
        Some(match v {
            0x00 => BthOpcode::SendFirst,
            0x01 => BthOpcode::SendMiddle,
            0x02 => BthOpcode::SendLast,
            0x04 => BthOpcode::SendOnly,
            0x11 => BthOpcode::Ack,
            0x06 => BthOpcode::WriteFirst,
            0x07 => BthOpcode::WriteMiddle,
            0x08 => BthOpcode::WriteLast,
            0x0a => BthOpcode::WriteOnly,
            _ => return None,
        })
    }

    /// Whether this opcode starts a message.
    pub fn is_first(self) -> bool {
        matches!(
            self,
            BthOpcode::SendFirst
                | BthOpcode::SendOnly
                | BthOpcode::WriteFirst
                | BthOpcode::WriteOnly
        )
    }

    /// Whether this opcode ends a message.
    pub fn is_last(self) -> bool {
        matches!(
            self,
            BthOpcode::SendLast | BthOpcode::SendOnly | BthOpcode::WriteLast | BthOpcode::WriteOnly
        )
    }

    /// Picks the RC SEND opcode for packet `index` out of `total` packets.
    ///
    /// # Panics
    ///
    /// Panics if `index >= total` or `total == 0`.
    pub fn send_for_position(index: usize, total: usize) -> Self {
        assert!(total > 0 && index < total, "invalid packet position");
        match (index == 0, index + 1 == total) {
            (true, true) => BthOpcode::SendOnly,
            (true, false) => BthOpcode::SendFirst,
            (false, true) => BthOpcode::SendLast,
            (false, false) => BthOpcode::SendMiddle,
        }
    }
}

/// Length of an ACK Extended Transport Header (AETH), carried by
/// Acknowledge packets after the BTH.
pub const AETH_LEN: usize = 4;

/// NAK codes (IBTA C9-142: the low five syndrome bits of a NAK).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NakCode {
    /// PSN sequence error: the responder saw a PSN gap; the requester
    /// must go-back-N from the AETH MSN.
    PsnSequenceError,
    /// Malformed or unsupported request.
    InvalidRequest,
    /// R_Key / access violation.
    RemoteAccessError,
    /// Responder could not complete the operation.
    RemoteOperationalError,
}

impl NakCode {
    /// The 5-bit code field value.
    pub fn value(self) -> u8 {
        match self {
            NakCode::PsnSequenceError => 0,
            NakCode::InvalidRequest => 1,
            NakCode::RemoteAccessError => 2,
            NakCode::RemoteOperationalError => 3,
        }
    }

    /// Decodes the 5-bit code field.
    pub fn from_value(v: u8) -> Option<NakCode> {
        Some(match v {
            0 => NakCode::PsnSequenceError,
            1 => NakCode::InvalidRequest,
            2 => NakCode::RemoteAccessError,
            3 => NakCode::RemoteOperationalError,
            _ => return None,
        })
    }
}

/// The AETH syndrome: positive ACK, RNR NAK with a backoff timer code,
/// or a NAK with its error code (IBTA § 9.7.5.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AethSyndrome {
    /// Positive acknowledgement.
    Ack,
    /// Receiver not ready: the responder has no receive WQE; retry after
    /// the encoded RNR timer.
    RnrNak {
        /// 5-bit IBTA RNR timer code.
        timer: u8,
    },
    /// Negative acknowledgement with an error code.
    Nak(NakCode),
}

impl AethSyndrome {
    /// Encodes the 8-bit syndrome field (bits 6:5 select ACK/RNR/NAK).
    pub fn value(self) -> u8 {
        match self {
            AethSyndrome::Ack => 0x00,
            AethSyndrome::RnrNak { timer } => 0x20 | (timer & 0x1f),
            AethSyndrome::Nak(code) => 0x60 | code.value(),
        }
    }

    /// Decodes a syndrome field.
    pub fn from_value(v: u8) -> Option<AethSyndrome> {
        match (v >> 5) & 0x3 {
            0b00 => Some(AethSyndrome::Ack),
            0b01 => Some(AethSyndrome::RnrNak { timer: v & 0x1f }),
            0b11 => NakCode::from_value(v & 0x1f).map(AethSyndrome::Nak),
            _ => None,
        }
    }

    /// Whether this syndrome is any flavour of NAK.
    pub fn is_nak(self) -> bool {
        !matches!(self, AethSyndrome::Ack)
    }
}

/// An ACK Extended Transport Header: syndrome plus the responder's
/// 24-bit message sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Aeth {
    /// ACK / RNR NAK / NAK discriminator.
    pub syndrome: AethSyndrome,
    /// Message sequence number (24 bits).
    pub msn: u32,
}

impl Aeth {
    /// Creates an AETH.
    ///
    /// # Panics
    ///
    /// Panics if `msn` exceeds 24 bits.
    pub fn new(syndrome: AethSyndrome, msn: u32) -> Self {
        assert!(msn < (1 << 24), "msn must fit in 24 bits");
        Aeth { syndrome, msn }
    }

    /// Serializes the header into `buf`.
    pub fn write(&self, buf: &mut BytesMut) {
        let msn = self.msn.to_be_bytes();
        buf.put_slice(&[self.syndrome.value(), msn[1], msn[2], msn[3]]);
    }

    /// Parses an AETH, returning it and the remaining bytes.
    ///
    /// # Errors
    ///
    /// Returns an error for truncated buffers or reserved syndromes.
    pub fn parse(data: &[u8]) -> Result<(Aeth, &[u8]), ParsePacketError> {
        if data.len() < AETH_LEN {
            return Err(ParsePacketError::Truncated {
                layer: "aeth",
                needed: AETH_LEN,
                available: data.len(),
            });
        }
        let syndrome = AethSyndrome::from_value(data[0]).ok_or(ParsePacketError::InvalidField {
            layer: "aeth",
            field: "syndrome",
            value: data[0] as u64,
        })?;
        let msn = u32::from_be_bytes([0, data[1], data[2], data[3]]);
        Ok((Aeth { syndrome, msn }, &data[AETH_LEN..]))
    }
}

/// A Base Transport Header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bth {
    /// Operation code.
    pub opcode: BthOpcode,
    /// Destination queue pair number (24 bits).
    pub dest_qp: u32,
    /// Packet sequence number (24 bits).
    pub psn: u32,
    /// Whether an acknowledge is requested.
    pub ack_req: bool,
    /// Partition key (default 0xFFFF).
    pub pkey: u16,
}

impl Bth {
    /// Creates a BTH with the default partition key.
    ///
    /// # Panics
    ///
    /// Panics if `dest_qp` exceeds 24 bits or `psn` exceeds 23 bits (the
    /// model keeps PSNs below 2^23 so the ack-request bit never aliases).
    pub fn new(opcode: BthOpcode, dest_qp: u32, psn: u32, ack_req: bool) -> Self {
        assert!(dest_qp < (1 << 24), "qp number must fit in 24 bits");
        assert!(psn < (1 << 23), "psn must fit in 23 bits");
        Bth {
            opcode,
            dest_qp,
            psn,
            ack_req,
            pkey: 0xffff,
        }
    }

    /// Serializes the header into `buf`.
    pub fn write(&self, buf: &mut BytesMut) {
        buf.put_u8(self.opcode.value());
        buf.put_u8(0); // se/migreq/padcnt/tver
        buf.put_u16(self.pkey);
        let qp = self.dest_qp.to_be_bytes();
        buf.put_slice(&[0, qp[1], qp[2], qp[3]]); // reserved + dest QP
        let psn = self.psn.to_be_bytes();
        let a = if self.ack_req { 0x80 } else { 0 };
        // Ack-request bit shares the PSN word; `new` keeps PSN < 2^23.
        buf.put_slice(&[a | psn[1], psn[2], psn[3], 0]);
    }

    /// Parses a header, returning it and the payload bytes.
    ///
    /// # Errors
    ///
    /// Returns an error for truncated buffers or unknown opcodes.
    pub fn parse(data: &[u8]) -> Result<(Bth, &[u8]), ParsePacketError> {
        if data.len() < BTH_LEN {
            return Err(ParsePacketError::Truncated {
                layer: "bth",
                needed: BTH_LEN,
                available: data.len(),
            });
        }
        let opcode = BthOpcode::from_value(data[0]).ok_or(ParsePacketError::InvalidField {
            layer: "bth",
            field: "opcode",
            value: data[0] as u64,
        })?;
        let pkey = u16::from_be_bytes([data[2], data[3]]);
        let dest_qp = u32::from_be_bytes([0, data[5], data[6], data[7]]);
        let ack_req = data[8] & 0x80 != 0;
        let psn = u32::from_be_bytes([0, data[8] & 0x7f, data[9], data[10]]);
        Ok((
            Bth {
                opcode,
                dest_qp,
                psn,
                ack_req,
                pkey,
            },
            &data[BTH_LEN..],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        for opcode in [
            BthOpcode::SendFirst,
            BthOpcode::SendMiddle,
            BthOpcode::SendLast,
            BthOpcode::SendOnly,
            BthOpcode::Ack,
            BthOpcode::WriteOnly,
        ] {
            let h = Bth::new(opcode, 0x1234, 0x00abcd, true);
            let mut buf = BytesMut::new();
            h.write(&mut buf);
            assert_eq!(buf.len(), BTH_LEN);
            let (parsed, rest) = Bth::parse(&buf).unwrap();
            assert_eq!(parsed, h);
            assert!(rest.is_empty());
        }
    }

    #[test]
    fn psn_without_ackreq() {
        let h = Bth::new(BthOpcode::SendOnly, 5, 0x7fffff, false);
        let mut buf = BytesMut::new();
        h.write(&mut buf);
        let (parsed, _) = Bth::parse(&buf).unwrap();
        assert_eq!(parsed.psn, 0x7fffff);
        assert!(!parsed.ack_req);
    }

    #[test]
    fn unknown_opcode_rejected() {
        let mut buf = BytesMut::new();
        Bth::new(BthOpcode::SendOnly, 1, 1, false).write(&mut buf);
        buf[0] = 0x3f;
        assert!(matches!(
            Bth::parse(&buf),
            Err(ParsePacketError::InvalidField {
                field: "opcode",
                ..
            })
        ));
    }

    #[test]
    fn aeth_round_trip() {
        for syndrome in [
            AethSyndrome::Ack,
            AethSyndrome::RnrNak { timer: 14 },
            AethSyndrome::Nak(NakCode::PsnSequenceError),
            AethSyndrome::Nak(NakCode::InvalidRequest),
            AethSyndrome::Nak(NakCode::RemoteAccessError),
            AethSyndrome::Nak(NakCode::RemoteOperationalError),
        ] {
            let h = Aeth::new(syndrome, 0x00beef);
            let mut buf = BytesMut::new();
            h.write(&mut buf);
            assert_eq!(buf.len(), AETH_LEN);
            let (parsed, rest) = Aeth::parse(&buf).unwrap();
            assert_eq!(parsed, h);
            assert!(rest.is_empty());
        }
    }

    #[test]
    fn nak_flavours_are_naks() {
        assert!(!AethSyndrome::Ack.is_nak());
        assert!(AethSyndrome::RnrNak { timer: 0 }.is_nak());
        assert!(AethSyndrome::Nak(NakCode::PsnSequenceError).is_nak());
    }

    #[test]
    fn reserved_syndrome_rejected() {
        // Bits 6:5 == 0b10 is reserved by the IBTA encoding.
        assert_eq!(AethSyndrome::from_value(0x40), None);
        assert!(matches!(
            Aeth::parse(&[0x40, 0, 0, 1]),
            Err(ParsePacketError::InvalidField {
                field: "syndrome",
                ..
            })
        ));
    }

    #[test]
    fn send_position_opcodes() {
        assert_eq!(BthOpcode::send_for_position(0, 1), BthOpcode::SendOnly);
        assert_eq!(BthOpcode::send_for_position(0, 3), BthOpcode::SendFirst);
        assert_eq!(BthOpcode::send_for_position(1, 3), BthOpcode::SendMiddle);
        assert_eq!(BthOpcode::send_for_position(2, 3), BthOpcode::SendLast);
    }

    #[test]
    fn first_last_flags() {
        assert!(BthOpcode::SendOnly.is_first() && BthOpcode::SendOnly.is_last());
        assert!(BthOpcode::SendFirst.is_first() && !BthOpcode::SendFirst.is_last());
        assert!(!BthOpcode::SendMiddle.is_first() && !BthOpcode::SendMiddle.is_last());
        assert!(BthOpcode::SendLast.is_last());
    }
}
