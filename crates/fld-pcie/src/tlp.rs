//! Transaction-layer packet (TLP) accounting.
//!
//! FlexDriver's performance ceiling is set by PCIe protocol overhead
//! (paper § 8.1: "FLD communicates via PCIe, which implies a certain
//! bandwidth overhead"). We model TLPs at the byte-accounting level: every
//! transaction costs its payload plus per-TLP framing/header/CRC bytes.

/// Kinds of transaction-layer packets exchanged between the NIC and FLD.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlpKind {
    /// Memory write with payload (posted).
    MemWrite {
        /// Payload bytes carried.
        payload: u32,
    },
    /// Memory read request (no payload).
    MemRead {
        /// Bytes requested.
        requested: u32,
    },
    /// Read completion with data.
    Completion {
        /// Payload bytes carried.
        payload: u32,
    },
}

/// Physical/data-link/transaction-layer overhead parameters for one TLP.
///
/// Defaults follow PCIe Gen 3: 4 B framing (STP token), 2 B sequence
/// number, 12 B header for 3-DW (completions) or 16 B for 4-DW requests
/// (64-bit addressing), and 4 B LCRC.
#[derive(Debug, Clone, Copy)]
pub struct TlpOverheads {
    /// Framing + sequence + LCRC bytes per TLP.
    pub link_layer: u32,
    /// Header bytes for memory requests (4-DW, 64-bit addressing).
    pub request_header: u32,
    /// Header bytes for completions (3-DW).
    pub completion_header: u32,
}

impl Default for TlpOverheads {
    fn default() -> Self {
        TlpOverheads {
            link_layer: 10,
            request_header: 16,
            completion_header: 12,
        }
    }
}

impl TlpOverheads {
    /// Total bytes this TLP occupies on the link.
    pub fn wire_bytes(&self, kind: TlpKind) -> u32 {
        match kind {
            TlpKind::MemWrite { payload } => self.link_layer + self.request_header + payload,
            TlpKind::MemRead { .. } => self.link_layer + self.request_header,
            TlpKind::Completion { payload } => self.link_layer + self.completion_header + payload,
        }
    }
}

/// Outcome of a non-posted transaction (read request) as observed by the
/// requester, for fault modeling.
///
/// PCIe expresses these differently on the wire — a poisoned TLP carries
/// the EP bit in its header, while a completion timeout is a
/// requester-side timer expiring because no completion ever arrived — but
/// to the device logic both collapse to "the data cannot be used", which
/// is the level this model cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlpOutcome {
    /// The completion arrived with usable data.
    Success,
    /// The completion arrived with the EP (poison) bit set: the payload
    /// is known-corrupt and must be discarded (error containment — the
    /// requester drops the data instead of consuming it).
    Poisoned,
    /// No completion arrived within the completion-timeout window; the
    /// requester gives up and may retry or report an uncorrectable error.
    CompletionTimeout,
}

impl TlpOutcome {
    /// Whether the requester may consume the returned data.
    pub fn data_usable(self) -> bool {
        self == TlpOutcome::Success
    }

    /// Whether the transaction ties up the requester for its full
    /// timeout window (only [`TlpOutcome::CompletionTimeout`] does —
    /// poisoned completions arrive at normal latency).
    pub fn stalls_requester(self) -> bool {
        self == TlpOutcome::CompletionTimeout
    }
}

/// Splits a transfer of `bytes` into TLP payload chunks bounded by
/// `max_chunk` (MPS for writes, RCB/MPS for read completions).
///
/// # Panics
///
/// Panics if `max_chunk` is zero.
pub fn chunked(bytes: u32, max_chunk: u32) -> impl Iterator<Item = u32> {
    assert!(max_chunk > 0, "chunk size must be positive");
    let full = bytes / max_chunk;
    let rem = bytes % max_chunk;
    (0..full)
        .map(move |_| max_chunk)
        .chain((rem > 0).then_some(rem))
}

/// Wire bytes for writing `bytes` of data as MPS-bounded MemWr TLPs.
pub fn write_wire_bytes(bytes: u32, mps: u32, ov: &TlpOverheads) -> u64 {
    chunked(bytes, mps)
        .map(|c| ov.wire_bytes(TlpKind::MemWrite { payload: c }) as u64)
        .sum()
}

/// Wire bytes (request direction, completion direction) for reading `bytes`
/// via a single read request answered by chunked completions.
pub fn read_wire_bytes(bytes: u32, completion_chunk: u32, ov: &TlpOverheads) -> (u64, u64) {
    let req = ov.wire_bytes(TlpKind::MemRead { requested: bytes }) as u64;
    let cpl = chunked(bytes, completion_chunk)
        .map(|c| ov.wire_bytes(TlpKind::Completion { payload: c }) as u64)
        .sum();
    (req, cpl)
}

/// Per-PCIe-function counter group (`pcie/fn/<f>/...` in the counter
/// tree), mirroring what `ethtool -S` exposes for a ConnectX function:
/// TLPs issued, wire bytes moved, completion timeouts and poisoned
/// completions observed by the requester.
///
/// Handles start detached so a function works before (or without) being
/// wired into a [`fld_sim::counters::CounterTree`]; a detached handle
/// accumulates locally but is not visible in any tree.
#[derive(Debug, Default)]
pub struct TlpCounters {
    /// TLPs issued by this function (requests + completions).
    pub tlps: fld_sim::counters::Counter,
    /// Total wire bytes moved (payload + framing).
    pub bytes: fld_sim::counters::Counter,
    /// Non-posted transactions that expired without a completion.
    pub completion_timeouts: fld_sim::counters::Counter,
    /// Completions that arrived with the EP (poison) bit set.
    pub poisoned_tlps: fld_sim::counters::Counter,
}

impl TlpCounters {
    /// A fully detached group (all increments discarded).
    pub fn detached() -> Self {
        TlpCounters::default()
    }

    /// A group registered under `pcie/fn/<fn_idx>/...` in `tree`.
    pub fn wired(tree: &fld_sim::counters::CounterTree, fn_idx: u32) -> Self {
        let leaf = |name: &str| tree.counter(&format!("pcie/fn/{fn_idx}/{name}"));
        TlpCounters {
            tlps: leaf("tlps"),
            bytes: leaf("bytes"),
            completion_timeouts: leaf("completion_timeouts"),
            poisoned_tlps: leaf("poisoned_tlps"),
        }
    }

    /// Accounts one TLP of `wire_bytes` on the link.
    #[inline]
    pub fn record_tlp(&self, wire_bytes: u32) {
        self.tlps.inc();
        self.bytes.add(wire_bytes as u64);
    }

    /// Accounts the fault-relevant half of a non-posted outcome.
    #[inline]
    pub fn record_outcome(&self, outcome: TlpOutcome) {
        match outcome {
            TlpOutcome::Success => {}
            TlpOutcome::Poisoned => self.poisoned_tlps.inc(),
            TlpOutcome::CompletionTimeout => self.completion_timeouts.inc(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_overheads() {
        let ov = TlpOverheads::default();
        assert_eq!(
            ov.wire_bytes(TlpKind::MemWrite { payload: 256 }),
            10 + 16 + 256
        );
        assert_eq!(ov.wire_bytes(TlpKind::MemRead { requested: 512 }), 26);
        assert_eq!(
            ov.wire_bytes(TlpKind::Completion { payload: 64 }),
            10 + 12 + 64
        );
    }

    #[test]
    fn chunking() {
        assert_eq!(chunked(512, 256).collect::<Vec<_>>(), vec![256, 256]);
        assert_eq!(chunked(600, 256).collect::<Vec<_>>(), vec![256, 256, 88]);
        assert_eq!(chunked(100, 256).collect::<Vec<_>>(), vec![100]);
        assert_eq!(chunked(0, 256).count(), 0);
    }

    #[test]
    fn write_accounting() {
        let ov = TlpOverheads::default();
        // 600 B at MPS 256: three TLPs, 26 B overhead each.
        assert_eq!(write_wire_bytes(600, 256, &ov), 600 + 3 * 26);
    }

    #[test]
    fn outcome_classification() {
        assert!(TlpOutcome::Success.data_usable());
        assert!(!TlpOutcome::Poisoned.data_usable());
        assert!(!TlpOutcome::CompletionTimeout.data_usable());
        // Only a timeout costs the requester its full timeout window.
        assert!(TlpOutcome::CompletionTimeout.stalls_requester());
        assert!(!TlpOutcome::Poisoned.stalls_requester());
    }

    #[test]
    fn wired_tlp_counters_land_under_the_function_prefix() {
        let tree = fld_sim::counters::CounterTree::new();
        let ctr = TlpCounters::wired(&tree, 3);
        ctr.record_tlp(90);
        ctr.record_tlp(26);
        ctr.record_outcome(TlpOutcome::Success);
        ctr.record_outcome(TlpOutcome::Poisoned);
        ctr.record_outcome(TlpOutcome::CompletionTimeout);
        assert_eq!(tree.get("pcie/fn/3/tlps"), Some(2));
        assert_eq!(tree.get("pcie/fn/3/bytes"), Some(116));
        assert_eq!(tree.get("pcie/fn/3/poisoned_tlps"), Some(1));
        assert_eq!(tree.get("pcie/fn/3/completion_timeouts"), Some(1));
        // A detached group accepts the same traffic without a tree.
        let off = TlpCounters::detached();
        off.record_tlp(64);
        assert_eq!(off.tlps.get(), 1);
        assert!(tree.get("pcie/fn/0/tlps").is_none());
    }

    #[test]
    fn read_accounting() {
        let ov = TlpOverheads::default();
        let (req, cpl) = read_wire_bytes(512, 256, &ov);
        assert_eq!(req, 26);
        assert_eq!(cpl, 512 + 2 * 22);
    }
}
