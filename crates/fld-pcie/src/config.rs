//! PCIe fabric configuration presets.

use fld_sim::time::{Bandwidth, SimDuration};

use crate::tlp::TlpOverheads;

/// Configuration of one PCIe point-to-point connection (full duplex: each
/// direction independently provides `rate`).
#[derive(Debug, Clone, Copy)]
pub struct PcieConfig {
    /// Usable per-direction data rate (after encoding).
    pub rate: Bandwidth,
    /// One-way latency through the fabric (switch + wire + PHY).
    pub latency: SimDuration,
    /// Maximum payload size for MemWr TLPs.
    pub max_payload: u32,
    /// Read-completion chunk bound (read completion boundary / MPS).
    pub completion_chunk: u32,
    /// Maximum read request size.
    pub max_read_request: u32,
    /// Per-TLP overhead bytes.
    pub overheads: TlpOverheads,
}

impl PcieConfig {
    /// The Innova-2 configuration the paper prototypes on: PCIe Gen 3 x8
    /// between the ConnectX-5 and the FPGA, ~50 Gbps usable per direction
    /// (§ 6: "the Innova-2 PCIe interface is limited to 50 Gbps").
    pub fn innova2_gen3_x8() -> Self {
        PcieConfig {
            rate: Bandwidth::gbps(50.0),
            latency: SimDuration::from_nanos(500),
            max_payload: 512,
            completion_chunk: 512,
            max_read_request: 512,
            overheads: TlpOverheads::default(),
        }
    }

    /// A Gen 4 x16-class fabric providing ~100 Gbps usable, matching the
    /// "100 Gbps PCIe" line of Figure 7a.
    pub fn gen4_x16_100g() -> Self {
        PcieConfig {
            rate: Bandwidth::gbps(100.0),
            ..Self::innova2_gen3_x8()
        }
    }

    /// An arbitrary-rate variant for sweeps.
    pub fn with_rate(self, rate: Bandwidth) -> Self {
        PcieConfig { rate, ..self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let c = PcieConfig::innova2_gen3_x8();
        assert_eq!(c.rate.as_gbps(), 50.0);
        assert_eq!(c.max_payload, 512);
        let g4 = PcieConfig::gen4_x16_100g();
        assert_eq!(g4.rate.as_gbps(), 100.0);
        assert_eq!(g4.max_payload, c.max_payload);
    }

    #[test]
    fn rate_override() {
        let c = PcieConfig::innova2_gen3_x8().with_rate(Bandwidth::gbps(25.0));
        assert_eq!(c.rate.as_gbps(), 25.0);
    }
}
