//! The analytic FLD performance model (paper § 8.1, Figure 7a and the
//! model curves of Figures 7b/8a).
//!
//! *"To estimate an upper bound on the expected FLD performance that
//! includes the PCIe overhead, we calculate the per-packet overhead and
//! derive the expected throughput. The overhead consists of control traffic
//! associated with NIC–FLD communication, such as descriptors and
//! completions."*
//!
//! The model accounts, per packet, every TLP crossing each PCIe direction:
//! data writes/read-completions, descriptor fetches, completion writes and
//! doorbells — with the batching optimizations the prototype uses
//! (§ 6: selective completion signalling, WQE-by-MMIO, multi-packet RQs).

use fld_sim::time::Bandwidth;

use crate::config::PcieConfig;
use crate::tlp::{read_wire_bytes, write_wire_bytes, TlpKind};

/// Per-frame Ethernet wire overhead used throughout the paper's rate math
/// (Table 2a uses `M + 20 B`).
pub const ETH_OVERHEAD: u64 = 20;

/// Sizes and batching factors of the NIC–FLD control protocol.
///
/// Sizes follow Table 2b (FLD column): 8 B compressed Tx descriptors,
/// 15 B compressed completions, 4 B producer indices.
#[derive(Debug, Clone, Copy)]
pub struct FldProtocolParams {
    /// Compressed transmit descriptor size (Table 2b: 8 B).
    pub tx_desc_size: u32,
    /// Compressed completion entry size (Table 2b: 15 B).
    pub cqe_size: u32,
    /// Producer index / doorbell payload (4 B).
    pub doorbell_size: u32,
    /// Descriptors fetched per NIC read (cache-line batching).
    pub desc_fetch_batch: u32,
    /// Rx completions per completion-queue write.
    pub rx_cqe_batch: u32,
    /// Tx completions per signalled completion (selective signalling).
    pub tx_cqe_batch: u32,
    /// Packets per doorbell / producer-index update.
    pub doorbell_batch: u32,
}

impl Default for FldProtocolParams {
    fn default() -> Self {
        FldProtocolParams {
            tx_desc_size: 8,
            cqe_size: 15,
            doorbell_size: 4,
            desc_fetch_batch: 8,
            rx_cqe_batch: 4,
            tx_cqe_batch: 16,
            doorbell_batch: 8,
        }
    }
}

/// Per-packet PCIe byte loads in each direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DirectionLoad {
    /// Bytes per packet flowing NIC → FLD.
    pub to_fld: f64,
    /// Bytes per packet flowing FLD → NIC.
    pub to_nic: f64,
}

impl DirectionLoad {
    fn plus(self, other: DirectionLoad) -> DirectionLoad {
        DirectionLoad {
            to_fld: self.to_fld + other.to_fld,
            to_nic: self.to_nic + other.to_nic,
        }
    }
}

/// The analytic performance model for one FLD instance behind a NIC.
#[derive(Debug, Clone)]
pub struct FldModel {
    pcie: PcieConfig,
    proto: FldProtocolParams,
}

impl FldModel {
    /// Creates a model over the given PCIe fabric with default protocol
    /// parameters.
    pub fn new(pcie: PcieConfig) -> Self {
        FldModel {
            pcie,
            proto: FldProtocolParams::default(),
        }
    }

    /// Creates a model with explicit protocol parameters.
    pub fn with_protocol(pcie: PcieConfig, proto: FldProtocolParams) -> Self {
        FldModel { pcie, proto }
    }

    /// The PCIe configuration in use.
    pub fn pcie(&self) -> &PcieConfig {
        &self.pcie
    }

    /// Raw-Ethernet goodput bound for `frame_len`-byte frames at `line`:
    /// the "Ethernet" curves of Figure 7a.
    pub fn ethernet_goodput(frame_len: u32, line: Bandwidth) -> f64 {
        line.as_bps() * frame_len as f64 / (frame_len as u64 + ETH_OVERHEAD) as f64
    }

    /// Per-packet PCIe bytes for *receiving* a `frame_len`-byte frame into
    /// the accelerator (NIC writes data + completion; FLD returns producer
    /// updates).
    pub fn rx_load(&self, frame_len: u32) -> DirectionLoad {
        let ov = &self.pcie.overheads;
        let p = &self.proto;
        let data = write_wire_bytes(frame_len, self.pcie.max_payload, ov) as f64;
        let cqe = ov.wire_bytes(TlpKind::MemWrite {
            payload: p.cqe_size,
        }) as f64
            / p.rx_cqe_batch as f64;
        let producer = ov.wire_bytes(TlpKind::MemWrite {
            payload: p.doorbell_size,
        }) as f64
            / p.doorbell_batch as f64;
        DirectionLoad {
            to_fld: data + cqe,
            to_nic: producer,
        }
    }

    /// Per-packet PCIe bytes for *transmitting* a `frame_len`-byte frame
    /// from the accelerator (NIC fetches descriptor + data; FLD receives
    /// completions; FLD rings doorbells).
    pub fn tx_load(&self, frame_len: u32) -> DirectionLoad {
        let ov = &self.pcie.overheads;
        let p = &self.proto;
        // Packet data: one read request per max_read_request bytes, data
        // returned as chunked completions.
        let mut to_fld = 0.0;
        let mut to_nic = 0.0;
        let reads = frame_len.div_ceil(self.pcie.max_read_request);
        for i in 0..reads {
            let chunk =
                (frame_len - i * self.pcie.max_read_request).min(self.pcie.max_read_request);
            let (req, cpl) = read_wire_bytes(chunk, self.pcie.completion_chunk, ov);
            to_fld += req as f64;
            to_nic += cpl as f64;
        }
        // Descriptor fetch, batched across desc_fetch_batch descriptors.
        let batch_bytes = p.tx_desc_size * p.desc_fetch_batch;
        let (dreq, dcpl) = read_wire_bytes(batch_bytes, self.pcie.completion_chunk, ov);
        to_fld += dreq as f64 / p.desc_fetch_batch as f64;
        to_nic += dcpl as f64 / p.desc_fetch_batch as f64;
        // Tx completion write (selective signalling).
        to_fld += ov.wire_bytes(TlpKind::MemWrite {
            payload: p.cqe_size,
        }) as f64
            / p.tx_cqe_batch as f64;
        // Doorbell.
        to_nic += ov.wire_bytes(TlpKind::MemWrite {
            payload: p.doorbell_size,
        }) as f64
            / p.doorbell_batch as f64;
        DirectionLoad { to_fld, to_nic }
    }

    fn pcie_bound(&self, frame_len: u32, load: DirectionLoad) -> f64 {
        let per_dir = load.to_fld.max(load.to_nic);
        self.pcie.rate.as_bps() * frame_len as f64 / per_dir
    }

    /// Upper-bound goodput for one-way receive into the accelerator.
    pub fn rx_throughput(&self, frame_len: u32, line: Bandwidth) -> f64 {
        Self::ethernet_goodput(frame_len, line)
            .min(self.pcie_bound(frame_len, self.rx_load(frame_len)))
    }

    /// Upper-bound goodput for one-way transmit from the accelerator.
    pub fn tx_throughput(&self, frame_len: u32, line: Bandwidth) -> f64 {
        Self::ethernet_goodput(frame_len, line)
            .min(self.pcie_bound(frame_len, self.tx_load(frame_len)))
    }

    /// Upper-bound goodput for an echo accelerator (each frame is both
    /// received and retransmitted, so each PCIe direction carries both
    /// flows) — the model line of Figure 7b.
    pub fn echo_throughput(&self, frame_len: u32, line: Bandwidth) -> f64 {
        let combined = self.rx_load(frame_len).plus(self.tx_load(frame_len));
        Self::ethernet_goodput(frame_len, line).min(self.pcie_bound(frame_len, combined))
    }

    /// Upper-bound goodput for an RDMA request/response accelerator
    /// (the model line of Figure 8a): `msg_len`-byte application payload
    /// plus `app_header` travels in `mtu`-byte RoCE packets both ways.
    ///
    /// Returns goodput in application-payload bits per second.
    pub fn rdma_echo_goodput(
        &self,
        msg_len: u32,
        app_header: u32,
        mtu: u32,
        line: Bandwidth,
    ) -> f64 {
        // RoCE v2 framing per MTU packet: Eth(14) + IP(20) + UDP(8) +
        // BTH(12) + ICRC(4) = 58 B, plus 20 B wire overhead.
        const ROCE_HDRS: u32 = 58;
        let payload = msg_len + app_header;
        let packets = payload.div_ceil(mtu).max(1);
        let wire_bytes = payload as u64 + packets as u64 * (ROCE_HDRS as u64 + ETH_OVERHEAD);
        let eth_bound = line.as_bps() * msg_len as f64 / wire_bytes as f64;
        // PCIe side: data + per-packet control, both directions (echo).
        let mut load = DirectionLoad {
            to_fld: 0.0,
            to_nic: 0.0,
        };
        let mut remaining = payload;
        for _ in 0..packets {
            let chunk = remaining.min(mtu);
            remaining -= chunk;
            load = load.plus(
                self.rx_load(chunk + ROCE_HDRS)
                    .plus(self.tx_load(chunk + ROCE_HDRS)),
            );
        }
        let per_dir = load.to_fld.max(load.to_nic);
        let pcie_bound = self.pcie.rate.as_bps() * msg_len as f64 / per_dir;
        eth_bound.min(pcie_bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn innova() -> FldModel {
        FldModel::new(PcieConfig::innova2_gen3_x8())
    }

    #[test]
    fn ethernet_goodput_shape() {
        let line = Bandwidth::gbps(25.0);
        let small = FldModel::ethernet_goodput(64, line);
        let large = FldModel::ethernet_goodput(1500, line);
        assert!(small < large);
        assert!(large < 25e9);
        // 1500 B: 25 * 1500/1520 = 24.67 Gbps.
        assert!((large / 1e9 - 24.67).abs() < 0.01);
    }

    /// Paper: "the overheads allow meeting line rate of 25 Gbps for any
    /// packet size" (Figure 7a, 25 Gbps configuration).
    #[test]
    fn meets_25g_line_rate_at_all_sizes() {
        let m = innova();
        let line = Bandwidth::gbps(25.0);
        for size in [64u32, 128, 256, 512, 1024, 1500] {
            let eth = FldModel::ethernet_goodput(size, line);
            let fld = m.echo_throughput(size, line);
            assert!(
                fld >= eth * 0.999,
                "size {size}: fld {:.2} < eth {:.2}",
                fld / 1e9,
                eth / 1e9
            );
        }
    }

    /// Paper: "FLD's current design can reach 95% of Ethernet line rate at
    /// 512 B packets for both 50 and 100 Gbps" — we accept >= 90 % as the
    /// shape criterion.
    #[test]
    fn near_line_rate_at_512b_for_50g() {
        let m = innova();
        let line = Bandwidth::gbps(50.0);
        let eth = FldModel::ethernet_goodput(512, line);
        let fld = m.echo_throughput(512, line);
        let ratio = fld / eth;
        assert!(ratio > 0.88, "ratio {ratio:.3}");
        assert!(ratio <= 1.0);
    }

    #[test]
    fn small_packets_are_pcie_bound_at_50g() {
        let m = innova();
        let line = Bandwidth::gbps(50.0);
        let eth = FldModel::ethernet_goodput(64, line);
        let fld = m.echo_throughput(64, line);
        assert!(
            fld < eth * 0.9,
            "64 B echo should be PCIe bound: {:.2} vs {:.2}",
            fld / 1e9,
            eth / 1e9
        );
    }

    #[test]
    fn one_way_beats_echo() {
        let m = innova();
        let line = Bandwidth::gbps(50.0);
        for size in [64u32, 256, 1024] {
            assert!(m.rx_throughput(size, line) >= m.echo_throughput(size, line));
            assert!(m.tx_throughput(size, line) >= m.echo_throughput(size, line));
        }
    }

    #[test]
    fn loads_scale_with_packet_size() {
        let m = innova();
        let small = m.rx_load(64);
        let large = m.rx_load(1500);
        assert!(large.to_fld > small.to_fld);
        // Producer updates do not depend on frame size.
        assert_eq!(small.to_nic, large.to_nic);
    }

    #[test]
    fn rdma_model_accounts_headers() {
        let m = innova();
        let line = Bandwidth::gbps(25.0);
        // Large requests approach (but never exceed) line rate.
        let large = m.rdma_echo_goodput(4096, 64, 1024, line);
        assert!(large < 25e9);
        assert!(large > 0.8 * 25e9, "large {:.2}", large / 1e9);
        // Small requests are dominated by fixed headers (RoCE + app header
        // + wire overhead exceed the 64 B payload itself).
        let small = m.rdma_echo_goodput(64, 64, 1024, line);
        assert!(
            small < large / 2.5,
            "small {small:.2e} vs large {large:.2e}"
        );
    }

    #[test]
    fn throughput_grows_with_packet_size() {
        // PCIe exhibits a small sawtooth at MPS boundaries (a 513 B packet
        // needs two TLPs), so we assert the overall trend plus a bound on
        // local dips rather than strict monotonicity.
        let m = innova();
        let line = Bandwidth::gbps(50.0);
        let mut prev = 0.0;
        let first = m.echo_throughput(64, line);
        let mut last = 0.0;
        for size in (64..=1536).step_by(64) {
            let t = m.echo_throughput(size as u32, line);
            assert!(t >= prev * 0.9, "throughput collapsed at {size}");
            prev = t;
            last = t;
        }
        assert!(last > first * 1.5, "large packets must be much faster");
    }
}
