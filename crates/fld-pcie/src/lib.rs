//! # fld-pcie — PCI-Express transaction-level model
//!
//! FlexDriver drives a commodity NIC over peer-to-peer PCIe, so its
//! performance envelope is set by PCIe protocol overheads (paper § 8.1).
//! This crate provides:
//!
//! * [`tlp`] — byte-accurate TLP wire-size accounting (headers, framing,
//!   MPS segmentation, read request/completion splits);
//! * [`config`] — fabric presets, including the Innova-2's Gen 3 x8 link
//!   ("limited to 50 Gbps", § 6);
//! * [`model`] — the paper's analytic per-packet performance model
//!   ([`model::FldModel`]), which produces the Figure 7a curves and the
//!   model lines in Figures 7b and 8a;
//! * [`fabric`] — alternative fabric topologies and the § 6
//!   bidirectional-contention pathology with its buffer-tuning mitigation.
//!
//! # Examples
//!
//! ```
//! use fld_pcie::config::PcieConfig;
//! use fld_pcie::model::FldModel;
//! use fld_sim::time::Bandwidth;
//!
//! let model = FldModel::new(PcieConfig::innova2_gen3_x8());
//! let line = Bandwidth::gbps(25.0);
//! // At 25 GbE the PCIe link has 2x headroom: line rate at any size.
//! assert!(model.echo_throughput(64, line) >= FldModel::ethernet_goodput(64, line) * 0.999);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod fabric;
pub mod model;
pub mod tlp;

pub use config::PcieConfig;
pub use fabric::{FabricTopology, SwitchPort};
pub use model::{FldModel, FldProtocolParams};
pub use tlp::{TlpCounters, TlpKind, TlpOutcome, TlpOverheads};
