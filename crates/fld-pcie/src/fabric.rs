//! PCIe fabric topologies beyond the integrated switch (paper § 6):
//! *"As FLD relies on peer-to-peer PCIe, it is not limited to SmartNICs,
//! but can also work with a separate NIC and FPGA boards connected through
//! a PCIe switch or the host CPU's PCIe root complex. Nevertheless, we
//! found optimizing for different PCIe fabrics difficult … Bidirectional
//! traffic can suffer degraded performance when control messages are
//! delayed behind queued data messages."*
//!
//! [`SwitchPort`] models a store-and-forward switch egress port with a
//! bounded buffer: small control TLPs (doorbells, descriptor reads) queue
//! behind large data TLPs, which is exactly the § 6 pathology. The tests
//! quantify it and show the paper's mitigation — *"tune switch buffers …
//! creating backpressure toward the NIC"* — shrinking the control-latency
//! tail.

use fld_sim::link::Link;
use fld_sim::time::{Bandwidth, SimDuration, SimTime};

use crate::tlp::{TlpKind, TlpOverheads};

/// How the NIC and FLD are interconnected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricTopology {
    /// The Innova-2's integrated switch (one hop, tuned buffers).
    IntegratedSwitch,
    /// Separate boards behind an external PCIe switch (one extra hop).
    ExternalSwitch,
    /// Peer-to-peer through the host root complex (two extra hops,
    /// sharing the host's PCIe links).
    RootComplex,
}

impl FabricTopology {
    /// Store-and-forward hops between the NIC and FLD.
    pub fn hops(self) -> u32 {
        match self {
            FabricTopology::IntegratedSwitch => 1,
            FabricTopology::ExternalSwitch => 2,
            FabricTopology::RootComplex => 3,
        }
    }

    /// Base one-way latency through the fabric.
    pub fn base_latency(self) -> SimDuration {
        SimDuration::from_nanos(150 + 300 * self.hops() as u64)
    }
}

/// One egress port of a store-and-forward switch with a bounded output
/// buffer.
#[derive(Debug)]
pub struct SwitchPort {
    link: Link,
    overheads: TlpOverheads,
    /// Output-buffer capacity in bytes; `transmit` reports whether the TLP
    /// found the buffer above the configured limit (backpressure signal).
    buffer_limit: u64,
    control_delays: fld_sim::stats::Histogram,
    backpressured: u64,
}

impl SwitchPort {
    /// Creates a port at `rate` with `buffer_limit` bytes of output buffer.
    pub fn new(rate: Bandwidth, buffer_limit: u64) -> Self {
        SwitchPort {
            link: Link::new(rate, SimDuration::from_nanos(150)),
            overheads: TlpOverheads::default(),
            buffer_limit,
            control_delays: fld_sim::stats::Histogram::new(),
            backpressured: 0,
        }
    }

    /// Bytes currently queued for the wire at `now`.
    pub fn queued_bytes(&self, now: SimTime) -> u64 {
        (self.link.backlog(now).as_secs_f64() * self.link.bandwidth().as_bps() / 8.0) as u64
    }

    /// Whether a sender should be backpressured right now (buffer above
    /// the limit) — the paper's tuning knob.
    pub fn should_backpressure(&self, now: SimTime) -> bool {
        self.queued_bytes(now) >= self.buffer_limit
    }

    /// Forwards a TLP; returns its arrival time at the next hop. Control
    /// TLPs (no payload or tiny payloads) have their queueing delay
    /// recorded.
    pub fn forward(&mut self, now: SimTime, tlp: TlpKind) -> SimTime {
        let bytes = self.overheads.wire_bytes(tlp) as u64;
        if self.should_backpressure(now) {
            self.backpressured += 1;
        }
        let is_control = matches!(
            tlp,
            TlpKind::MemRead { .. } | TlpKind::MemWrite { payload: 0..=16 }
        );
        let queue_delay = self.link.backlog(now);
        let arrival = self.link.transmit(now, bytes);
        if is_control {
            self.control_delays.record_duration(queue_delay);
        }
        arrival
    }

    /// Queueing-delay distribution observed by control TLPs (ns).
    pub fn control_delays(&self) -> &fld_sim::stats::Histogram {
        &self.control_delays
    }

    /// TLPs that arrived while the buffer exceeded the limit.
    pub fn backpressured(&self) -> u64 {
        self.backpressured
    }

    /// The configured output-buffer capacity in bytes.
    pub fn buffer_limit(&self) -> u64 {
        self.buffer_limit
    }

    /// Remaining output-buffer credits in bytes at `now` — the PCIe
    /// credit-count flight-recorder probe. Saturates at zero while the
    /// port is driven past its backpressure limit.
    pub fn buffer_credits(&self, now: SimTime) -> u64 {
        self.buffer_limit.saturating_sub(self.queued_bytes(now))
    }

    /// Total bytes ever forwarded (for per-window utilization probes).
    pub fn bytes_forwarded(&self) -> u64 {
        self.link.bytes_sent()
    }

    /// Registers the port's telemetry under `prefix`
    /// (`"{prefix}.control_delay_ns"`, `"{prefix}.backpressured"`, …).
    pub fn export_metrics(&self, prefix: &str, registry: &mut fld_sim::metrics::MetricsRegistry) {
        registry.histogram(format!("{prefix}.control_delay_ns"), &self.control_delays);
        registry.counter(format!("{prefix}.backpressured"), self.backpressured);
        registry.counter(format!("{prefix}.bytes_forwarded"), self.link.bytes_sent());
        registry.counter(format!("{prefix}.tlps_forwarded"), self.link.units_sent());
    }
}

/// Measures the § 6 pathology: control-TLP queueing delay behind bulk data
/// through one switch port, with and without buffer-limit backpressure
/// honored by the sender.
///
/// Returns `(p99 control delay unthrottled, p99 control delay throttled)`
/// in nanoseconds.
pub fn bidirectional_contention_experiment(buffer_limit: u64) -> (u64, u64) {
    let run = |honor_backpressure: bool| -> u64 {
        let mut port = SwitchPort::new(Bandwidth::gbps(50.0), buffer_limit);
        let mut now = SimTime::ZERO;
        // Bulk data: 512 B write TLPs arriving slightly above line rate;
        // control: a doorbell every 10 data TLPs.
        let data_gap = SimDuration::from_nanos(80); // ~54 Gbps offered
        for i in 0..200_000u32 {
            if !(honor_backpressure && port.should_backpressure(now)) {
                port.forward(now, TlpKind::MemWrite { payload: 512 });
            }
            if i % 10 == 0 {
                port.forward(now, TlpKind::MemWrite { payload: 4 });
            }
            now += data_gap;
        }
        port.control_delays().percentile(99.0)
    };
    (run(false), run(true))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_latencies_order() {
        assert!(
            FabricTopology::IntegratedSwitch.base_latency()
                < FabricTopology::ExternalSwitch.base_latency()
        );
        assert!(
            FabricTopology::ExternalSwitch.base_latency()
                < FabricTopology::RootComplex.base_latency()
        );
        assert_eq!(FabricTopology::RootComplex.hops(), 3);
    }

    #[test]
    fn control_tlps_queue_behind_data() {
        let mut port = SwitchPort::new(Bandwidth::gbps(10.0), u64::MAX);
        let now = SimTime::ZERO;
        // Queue 100 big writes, then a doorbell.
        for _ in 0..100 {
            port.forward(now, TlpKind::MemWrite { payload: 512 });
        }
        port.forward(now, TlpKind::MemWrite { payload: 4 });
        // The doorbell waited behind ~54 KB at 10 Gbps ≈ 43 us.
        let p = port.control_delays().percentile(50.0);
        assert!(p > 40_000, "control delay {p} ns");
    }

    #[test]
    fn empty_port_forwards_immediately() {
        let mut port = SwitchPort::new(Bandwidth::gbps(50.0), 4096);
        let arrival = port.forward(SimTime::ZERO, TlpKind::MemRead { requested: 64 });
        // Serialization of 26 B + 150 ns propagation.
        assert!(arrival.as_nanos() < 200);
        assert_eq!(port.backpressured(), 0);
    }

    /// The paper's observation and mitigation, quantified: honoring switch
    /// buffer-limit backpressure shrinks the control-latency tail by an
    /// order of magnitude under overload.
    #[test]
    fn backpressure_tames_control_latency() {
        let (unthrottled, throttled) = bidirectional_contention_experiment(16 * 1024);
        assert!(
            unthrottled > 10 * throttled.max(1),
            "unthrottled p99 {unthrottled} ns vs throttled {throttled} ns"
        );
    }

    #[test]
    fn backpressure_signal_tracks_buffer() {
        let mut port = SwitchPort::new(Bandwidth::gbps(1.0), 2048);
        let now = SimTime::ZERO;
        assert!(!port.should_backpressure(now));
        for _ in 0..10 {
            port.forward(now, TlpKind::MemWrite { payload: 512 });
        }
        assert!(port.should_backpressure(now));
        // After the queue drains, the signal clears.
        let later = SimTime::from_millis(1);
        assert!(!port.should_backpressure(later));
    }
}
