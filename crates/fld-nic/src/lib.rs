//! # fld-nic — a ConnectX-5-class NIC model
//!
//! FlexDriver's premise is that a commodity NIC already implements the hard
//! parts of datacenter networking — *"employ unaltered commodity NICs while
//! utilizing NIC offloads"* (paper § 4, goal c). This crate models that NIC
//! at the transaction level:
//!
//! * [`wqe`] — descriptor/CQE formats in both the NIC's software layout and
//!   FLD's compressed form (Table 2b sizes);
//! * [`packet`] — the simulation packet representation with parsed
//!   metadata;
//! * [`eswitch`] — match-action pipelines with the FLD-E acceleration
//!   action ("send to accelerator, resume at table N");
//! * [`rss`] — receive-side scaling with real Toeplitz hashing and the
//!   fragment 2-tuple fallback;
//! * [`rdma`] — a reliable-connection RoCE transport with segmentation,
//!   ACK coalescing and go-back-N recovery;
//! * [`shaper`] — per-tenant maximum-bandwidth policers;
//! * [`vf`] — SR-IOV-style virtual functions: per-VF rule partitions,
//!   transmit shapers and counter subtrees over the eSwitch;
//! * [`mprq`] — multi-packet receive queues bounding rx fragmentation
//!   (§ 5.2);
//! * [`virtio`] — a split virtqueue plus the FLD adapter for
//!   virtio-compatible NICs (the § 6 portability extension);
//! * [`portability`] — the vendor-interface layer of Figure 3, with
//!   ConnectX-5 and ConnectX-6 Dx codecs (the § 6 port);
//! * [`queues`] — the conventional software-driver rings of § 2.2 (the
//!   "Software" column of Table 3, as working code);
//! * [`ets`] — the 802.1Qaz egress scheduler behind § 5.5's per-queue
//!   credit backpressure;
//! * [`nic`] — the aggregate device and its control-plane command surface.
//!
//! # Examples
//!
//! ```
//! use fld_nic::nic::{Direction, Nic, NicConfig};
//! use fld_nic::eswitch::{Action, MatchSpec, Rule};
//!
//! let mut nic = Nic::new(NicConfig::default());
//! // Steer fragments to the accelerator, everything else to host RSS.
//! nic.install_rule(Direction::Ingress, 0, Rule {
//!     priority: 10,
//!     spec: MatchSpec { is_fragment: Some(true), ..MatchSpec::any() },
//!     actions: vec![Action::ToAccelerator { queue: 0, next_table: 1 }],
//! })?;
//! # Ok::<(), fld_nic::nic::NicError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod eswitch;
pub mod ets;
pub mod mprq;
pub mod nic;
pub mod packet;
pub mod portability;
pub mod queues;
pub mod rdma;
pub mod rss;
pub mod shaper;
pub mod vf;
pub mod virtio;
pub mod wqe;

pub use eswitch::{Action, MatchSpec, Pipeline, Rule, Verdict};
pub use ets::{ClassKind, EtsScheduler};
pub use mprq::{Mprq, MprqPlacement};
pub use nic::{Direction, Nic, NicConfig, NicError};
pub use packet::{PacketMeta, SimPacket};
pub use portability::{DescriptorCodec, InterfaceLayer, NicGeneration};
pub use queues::{
    CompletionQueue, QueueErrorMachine, QueueErrorState, SharedReceiveQueue, SoftwareDriverQueues,
    SoftwareSendQueue,
};
pub use rdma::{QpConfig, QpState, RcQp, RdmaEvent, RdmaPacket};
pub use rss::RssContext;
pub use shaper::{PolicerSet, PolicerVerdict};
pub use vf::{PfTotals, SrIov, VfConfig, VfError};
pub use virtio::{FldVirtioTx, SplitQueue, VirtqDesc};
pub use wqe::{CompressedTxDescriptor, Cqe, ExpansionContext, TxDescriptor};
