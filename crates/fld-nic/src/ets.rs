//! Enhanced Transmission Selection (ETS, IEEE 802.1Qaz) — the NIC egress
//! scheduler the paper's credit interface exists to cope with (§ 5.5:
//! *"When transmitting, each queue may progress at a different rate due to
//! NIC prioritization (e.g., ETS) or transport-layer flow-/congestion-
//! control. Therefore, we provide per-queue backpressure to the
//! accelerator in the form of a credit interface."*).
//!
//! Implemented as deficit-weighted round robin over bandwidth-sharing
//! traffic classes, with optional strict-priority classes served first —
//! the standard ETS structure.

use std::collections::VecDeque;

/// How a traffic class is served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassKind {
    /// Served before all weighted classes (e.g. network control).
    StrictPriority,
    /// Shares remaining bandwidth in proportion to its weight.
    Weighted {
        /// Relative bandwidth share (ETS "bandwidth percentage").
        weight: u32,
    },
}

#[derive(Debug)]
struct ClassState {
    kind: ClassKind,
    deficit: u64,
    queue: VecDeque<(u64, u32)>, // (packet id, bytes)
    bytes_sent: u64,
}

/// The ETS egress scheduler.
///
/// # Examples
///
/// ```
/// use fld_nic::ets::{ClassKind, EtsScheduler};
///
/// let mut ets = EtsScheduler::new(vec![
///     ClassKind::Weighted { weight: 1 },
///     ClassKind::Weighted { weight: 3 },
/// ]);
/// ets.enqueue(0, 1, 1500)?;
/// ets.enqueue(1, 2, 1500)?;
/// assert!(ets.dequeue().is_some());
/// # Ok::<(), fld_nic::ets::EtsError>(())
/// ```
#[derive(Debug)]
pub struct EtsScheduler {
    classes: Vec<ClassState>,
    /// DWRR quantum per weight unit, in bytes.
    quantum: u64,
    /// Round-robin cursor over weighted classes.
    cursor: usize,
}

/// Errors from the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EtsError {
    /// The referenced class does not exist.
    UnknownClass(usize),
}

impl std::fmt::Display for EtsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EtsError::UnknownClass(c) => write!(f, "unknown traffic class {c}"),
        }
    }
}

impl std::error::Error for EtsError {}

impl EtsScheduler {
    /// Creates a scheduler over the given classes.
    ///
    /// # Panics
    ///
    /// Panics if no classes are given, or a weighted class has zero weight.
    pub fn new(kinds: Vec<ClassKind>) -> Self {
        assert!(!kinds.is_empty(), "need at least one class");
        for k in &kinds {
            if let ClassKind::Weighted { weight } = k {
                assert!(*weight > 0, "weights must be positive");
            }
        }
        EtsScheduler {
            classes: kinds
                .into_iter()
                .map(|kind| ClassState {
                    kind,
                    deficit: 0,
                    queue: VecDeque::new(),
                    bytes_sent: 0,
                })
                .collect(),
            quantum: 1600, // ~one MTU per weight unit per round
            cursor: 0,
        }
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Queued packets in `class`.
    ///
    /// # Errors
    ///
    /// Fails for unknown classes.
    pub fn backlog(&self, class: usize) -> Result<usize, EtsError> {
        self.classes
            .get(class)
            .map(|c| c.queue.len())
            .ok_or(EtsError::UnknownClass(class))
    }

    /// Bytes ever dequeued from `class`.
    ///
    /// # Errors
    ///
    /// Fails for unknown classes.
    pub fn bytes_sent(&self, class: usize) -> Result<u64, EtsError> {
        self.classes
            .get(class)
            .map(|c| c.bytes_sent)
            .ok_or(EtsError::UnknownClass(class))
    }

    /// Enqueues packet `id` of `bytes` into `class`.
    ///
    /// # Errors
    ///
    /// Fails for unknown classes.
    pub fn enqueue(&mut self, class: usize, id: u64, bytes: u32) -> Result<(), EtsError> {
        let c = self
            .classes
            .get_mut(class)
            .ok_or(EtsError::UnknownClass(class))?;
        c.queue.push_back((id, bytes));
        Ok(())
    }

    /// Whether anything is queued.
    pub fn is_empty(&self) -> bool {
        self.classes.iter().all(|c| c.queue.is_empty())
    }

    /// Picks the next packet to transmit: strict-priority classes first (in
    /// class order), then deficit-weighted round robin over the rest.
    pub fn dequeue(&mut self) -> Option<(usize, u64, u32)> {
        // Strict priority.
        for (i, c) in self.classes.iter_mut().enumerate() {
            if c.kind == ClassKind::StrictPriority {
                if let Some((id, bytes)) = c.queue.pop_front() {
                    c.bytes_sent += bytes as u64;
                    return Some((i, id, bytes));
                }
            }
        }
        // DWRR over weighted classes with work to do.
        if self.is_empty() {
            return None;
        }
        let n = self.classes.len();
        loop {
            let idx = self.cursor % n;
            let quantum = self.quantum;
            let c = &mut self.classes[idx];
            if let ClassKind::Weighted { weight } = c.kind {
                if let Some(&(id, bytes)) = c.queue.front() {
                    if c.deficit >= bytes as u64 {
                        c.deficit -= bytes as u64;
                        c.queue.pop_front();
                        c.bytes_sent += bytes as u64;
                        return Some((idx, id, bytes));
                    }
                    // Exhausted this round: top up and move on.
                    c.deficit += quantum * weight as u64;
                    self.cursor += 1;
                } else {
                    // Idle classes do not accumulate deficit (DRR rule).
                    c.deficit = 0;
                    self.cursor += 1;
                }
            } else {
                self.cursor += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drains the scheduler for `packets` dequeues with both classes kept
    /// backlogged; returns per-class byte counts.
    fn run_backlogged(weights: &[u32], pkt_bytes: u32, rounds: usize) -> Vec<u64> {
        let mut ets = EtsScheduler::new(
            weights
                .iter()
                .map(|w| ClassKind::Weighted { weight: *w })
                .collect(),
        );
        let mut id = 0u64;
        for _ in 0..rounds {
            // Keep every class topped up.
            for class in 0..weights.len() {
                while ets.backlog(class).unwrap() < 4 {
                    ets.enqueue(class, id, pkt_bytes).unwrap();
                    id += 1;
                }
            }
            ets.dequeue().expect("backlogged");
        }
        (0..weights.len())
            .map(|c| ets.bytes_sent(c).unwrap())
            .collect()
    }

    #[test]
    fn weighted_shares_converge() {
        let sent = run_backlogged(&[1, 3], 1500, 20_000);
        let share = sent[1] as f64 / (sent[0] + sent[1]) as f64;
        assert!((share - 0.75).abs() < 0.02, "class1 share {share}");
    }

    #[test]
    fn equal_weights_split_evenly() {
        let sent = run_backlogged(&[2, 2, 2, 2], 1000, 40_000);
        let total: u64 = sent.iter().sum();
        for (i, s) in sent.iter().enumerate() {
            let share = *s as f64 / total as f64;
            assert!((share - 0.25).abs() < 0.02, "class {i} share {share}");
        }
    }

    #[test]
    fn strict_priority_preempts() {
        let mut ets = EtsScheduler::new(vec![
            ClassKind::StrictPriority,
            ClassKind::Weighted { weight: 1 },
        ]);
        ets.enqueue(1, 100, 1500).unwrap();
        ets.enqueue(0, 200, 64).unwrap();
        ets.enqueue(1, 101, 1500).unwrap();
        ets.enqueue(0, 201, 64).unwrap();
        // Both priority packets leave first despite arriving second.
        assert_eq!(ets.dequeue().unwrap().1, 200);
        assert_eq!(ets.dequeue().unwrap().1, 201);
        assert_eq!(ets.dequeue().unwrap().1, 100);
    }

    #[test]
    fn idle_classes_do_not_starve_others() {
        let mut ets = EtsScheduler::new(vec![
            ClassKind::Weighted { weight: 100 },
            ClassKind::Weighted { weight: 1 },
        ]);
        // Only the low-weight class has traffic: it gets full bandwidth.
        for i in 0..50u64 {
            ets.enqueue(1, i, 1500).unwrap();
        }
        for i in 0..50u64 {
            let (class, id, _) = ets.dequeue().expect("backlogged");
            assert_eq!((class, id), (1, i));
        }
        assert!(ets.is_empty());
        assert!(ets.dequeue().is_none());
    }

    #[test]
    fn mixed_packet_sizes_share_by_bytes_not_packets() {
        // Class 0 sends 64 B packets, class 1 sends 1500 B; equal weights
        // must equalize BYTES, so class 0 dequeues ~23x more packets.
        let mut ets = EtsScheduler::new(vec![
            ClassKind::Weighted { weight: 1 },
            ClassKind::Weighted { weight: 1 },
        ]);
        let mut id = 0;
        let mut pkts = [0u64; 2];
        for _ in 0..40_000 {
            for class in 0..2 {
                while ets.backlog(class).unwrap() < 4 {
                    ets.enqueue(class, id, if class == 0 { 64 } else { 1500 })
                        .unwrap();
                    id += 1;
                }
            }
            let (class, _, _) = ets.dequeue().unwrap();
            pkts[class] += 1;
        }
        let b0 = ets.bytes_sent(0).unwrap() as f64;
        let b1 = ets.bytes_sent(1).unwrap() as f64;
        assert!(
            (b0 / (b0 + b1) - 0.5).abs() < 0.03,
            "byte share {}",
            b0 / (b0 + b1)
        );
        assert!(pkts[0] > pkts[1] * 15, "packet counts {pkts:?}");
    }

    #[test]
    fn unknown_class_errors() {
        let mut ets = EtsScheduler::new(vec![ClassKind::Weighted { weight: 1 }]);
        assert_eq!(ets.enqueue(9, 0, 64), Err(EtsError::UnknownClass(9)));
        assert_eq!(ets.backlog(9), Err(EtsError::UnknownClass(9)));
    }
}
