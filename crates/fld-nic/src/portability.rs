//! The vendor-interface portability layer (paper Figure 3: *"A proprietary
//! interface layer converts between the NIC's vendor-specific data
//! structures and the FLD's internal formats"*; § 6: *"some NIC families
//! have enough similarities to allow porting the design with minimal
//! changes. For example, we have successfully tested our ConnectX-5-based
//! design against ConnectX-6 Dx."*).
//!
//! FLD's internal state is the compressed form; only this thin codec layer
//! knows each NIC generation's wire layout. Porting to a new generation
//! means implementing [`DescriptorCodec`] for it — nothing in the ring
//! managers, buffer pools or translation tables changes.

use bytes::{BufMut, BytesMut};

use crate::wqe::{Cqe, ExpansionContext, TxDescriptor, SW_TX_DESC_SIZE};

/// Supported NIC generations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NicGeneration {
    /// ConnectX-5 (the Innova-2 prototype NIC).
    ConnectX5,
    /// ConnectX-6 Dx (the § 6 porting target).
    ConnectX6Dx,
}

/// A vendor descriptor/CQE wire codec. The FLD data path is generic over
/// this trait; each NIC generation supplies one implementation.
pub trait DescriptorCodec: std::fmt::Debug {
    /// Which generation this codec speaks.
    fn generation(&self) -> NicGeneration;

    /// Serializes a transmit descriptor in the generation's wire layout.
    fn write_tx_descriptor(&self, d: &TxDescriptor, out: &mut BytesMut);

    /// Parses a transmit descriptor from the generation's wire layout.
    ///
    /// Returns `None` on malformed input.
    fn read_tx_descriptor(&self, data: &[u8]) -> Option<TxDescriptor>;

    /// Serializes a completion in the generation's wire layout.
    fn write_cqe(&self, cqe: &Cqe, out: &mut BytesMut);

    /// Wire size of a transmit descriptor.
    fn tx_descriptor_size(&self) -> usize {
        SW_TX_DESC_SIZE
    }
}

/// The ConnectX-5 layout: big-endian fields, address first.
#[derive(Debug, Default)]
pub struct ConnectX5Codec;

impl DescriptorCodec for ConnectX5Codec {
    fn generation(&self) -> NicGeneration {
        NicGeneration::ConnectX5
    }

    fn write_tx_descriptor(&self, d: &TxDescriptor, out: &mut BytesMut) {
        let start = out.len();
        out.put_u64(d.addr);
        out.put_u32(d.len);
        out.put_u32(d.lkey);
        out.put_u16(d.queue);
        out.put_u8(d.signalled as u8);
        out.put_u16(d.offload_flags);
        out.resize(start + SW_TX_DESC_SIZE, 0);
    }

    fn read_tx_descriptor(&self, data: &[u8]) -> Option<TxDescriptor> {
        if data.len() < SW_TX_DESC_SIZE {
            return None;
        }
        Some(TxDescriptor {
            addr: u64::from_be_bytes(data[0..8].try_into().ok()?),
            len: u32::from_be_bytes(data[8..12].try_into().ok()?),
            lkey: u32::from_be_bytes(data[12..16].try_into().ok()?),
            queue: u16::from_be_bytes(data[16..18].try_into().ok()?),
            signalled: data[18] != 0,
            offload_flags: u16::from_be_bytes(data[19..21].try_into().ok()?),
        })
    }

    fn write_cqe(&self, cqe: &Cqe, out: &mut BytesMut) {
        let start = out.len();
        out.put_slice(&cqe.to_compressed());
        out.resize(start + crate::wqe::SW_CQE_SIZE, 0);
    }
}

/// The ConnectX-6 Dx layout: the same information with a reordered header
/// (control segment first: queue/flags, then lkey, then address/length) —
/// representative of the "minimal changes" a generation bump needs.
#[derive(Debug, Default)]
pub struct ConnectX6DxCodec;

impl DescriptorCodec for ConnectX6DxCodec {
    fn generation(&self) -> NicGeneration {
        NicGeneration::ConnectX6Dx
    }

    fn write_tx_descriptor(&self, d: &TxDescriptor, out: &mut BytesMut) {
        let start = out.len();
        // Control segment.
        out.put_u16(d.queue);
        out.put_u16(d.offload_flags);
        out.put_u8(d.signalled as u8);
        out.put_slice(&[0; 3]); // reserved
                                // Memory segment.
        out.put_u32(d.lkey);
        out.put_u32(d.len);
        out.put_u64(d.addr);
        out.resize(start + SW_TX_DESC_SIZE, 0);
    }

    fn read_tx_descriptor(&self, data: &[u8]) -> Option<TxDescriptor> {
        if data.len() < SW_TX_DESC_SIZE {
            return None;
        }
        Some(TxDescriptor {
            queue: u16::from_be_bytes(data[0..2].try_into().ok()?),
            offload_flags: u16::from_be_bytes(data[2..4].try_into().ok()?),
            signalled: data[4] != 0,
            lkey: u32::from_be_bytes(data[8..12].try_into().ok()?),
            len: u32::from_be_bytes(data[12..16].try_into().ok()?),
            addr: u64::from_be_bytes(data[16..24].try_into().ok()?),
        })
    }

    fn write_cqe(&self, cqe: &Cqe, out: &mut BytesMut) {
        let start = out.len();
        // CX6 places the compressed fields at the segment end.
        out.resize(
            start + crate::wqe::SW_CQE_SIZE - crate::wqe::FLD_CQE_SIZE,
            0,
        );
        out.put_slice(&cqe.to_compressed());
    }
}

/// Returns the codec for a generation.
pub fn codec_for(generation: NicGeneration) -> Box<dyn DescriptorCodec> {
    match generation {
        NicGeneration::ConnectX5 => Box::new(ConnectX5Codec),
        NicGeneration::ConnectX6Dx => Box::new(ConnectX6DxCodec),
    }
}

/// The FLD interface layer: compressed storage inside, vendor wire format
/// outside — generic over the codec, demonstrating the § 6 port.
///
/// # Examples
///
/// ```
/// use fld_nic::portability::{InterfaceLayer, NicGeneration};
/// use fld_nic::wqe::CompressedTxDescriptor;
///
/// let layer = InterfaceLayer::new(NicGeneration::ConnectX6Dx);
/// let compressed = CompressedTxDescriptor { buf_id: 3, offset64: 0, len: 512, flags: 0 };
/// let mut wire = bytes::BytesMut::new();
/// layer.expand_to_wire(&compressed, &mut wire);
/// assert_eq!(layer.parse_wire(&wire).unwrap().len, 512);
/// ```
#[derive(Debug)]
pub struct InterfaceLayer {
    expansion: ExpansionContext,
    codec: Box<dyn DescriptorCodec>,
}

impl InterfaceLayer {
    /// Creates the layer for a NIC generation.
    pub fn new(generation: NicGeneration) -> Self {
        InterfaceLayer {
            expansion: ExpansionContext::default(),
            codec: codec_for(generation),
        }
    }

    /// The generation in use.
    pub fn generation(&self) -> NicGeneration {
        self.codec.generation()
    }

    /// Handles a NIC descriptor read: expands the compressed entry to the
    /// generation's wire format.
    pub fn expand_to_wire(
        &self,
        compressed: &crate::wqe::CompressedTxDescriptor,
        out: &mut BytesMut,
    ) {
        let d = self.expansion.expand(compressed);
        self.codec.write_tx_descriptor(&d, out);
    }

    /// Parses a wire descriptor back (used by tests and by the NIC model's
    /// DMA engine).
    pub fn parse_wire(&self, data: &[u8]) -> Option<TxDescriptor> {
        self.codec.read_tx_descriptor(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wqe::CompressedTxDescriptor;

    fn sample() -> TxDescriptor {
        TxDescriptor {
            addr: ExpansionContext::default().pool_base + 99 * 64,
            len: 1234,
            lkey: 0x42,
            queue: 3,
            signalled: true,
            offload_flags: 0x18,
        }
    }

    #[test]
    fn both_generations_round_trip() {
        for generation in [NicGeneration::ConnectX5, NicGeneration::ConnectX6Dx] {
            let codec = codec_for(generation);
            let mut buf = BytesMut::new();
            codec.write_tx_descriptor(&sample(), &mut buf);
            assert_eq!(buf.len(), SW_TX_DESC_SIZE);
            let parsed = codec.read_tx_descriptor(&buf).expect("parses");
            assert_eq!(parsed, sample(), "{generation:?}");
        }
    }

    #[test]
    fn layouts_actually_differ() {
        let mut cx5 = BytesMut::new();
        let mut cx6 = BytesMut::new();
        ConnectX5Codec.write_tx_descriptor(&sample(), &mut cx5);
        ConnectX6DxCodec.write_tx_descriptor(&sample(), &mut cx6);
        assert_ne!(cx5, cx6, "a port with identical layouts proves nothing");
    }

    #[test]
    fn interface_layer_ports_without_touching_compressed_state() {
        // The SAME compressed entry (FLD's internal state) serves both
        // generations — the §6 claim.
        let compressed = CompressedTxDescriptor {
            buf_id: 99,
            offset64: 0,
            len: 1234,
            flags: 3,
        };
        for generation in [NicGeneration::ConnectX5, NicGeneration::ConnectX6Dx] {
            let layer = InterfaceLayer::new(generation);
            let mut wire = BytesMut::new();
            layer.expand_to_wire(&compressed, &mut wire);
            let d = layer.parse_wire(&wire).expect("parses");
            assert_eq!(d.len, 1234);
            assert_eq!(d.queue, 3);
            assert_eq!(d.addr, ExpansionContext::default().pool_base + 99 * 64);
        }
    }

    #[test]
    fn cqe_sizes_stay_native() {
        for generation in [NicGeneration::ConnectX5, NicGeneration::ConnectX6Dx] {
            let codec = codec_for(generation);
            let mut buf = BytesMut::new();
            codec.write_cqe(
                &Cqe {
                    queue: 1,
                    wqe_index: 2,
                    byte_len: 3,
                    rss_hash: 4,
                    context_id: 5,
                    checksum_ok: true,
                    end_of_message: false,
                },
                &mut buf,
            );
            assert_eq!(buf.len(), crate::wqe::SW_CQE_SIZE, "{generation:?}");
        }
    }

    #[test]
    fn truncated_wire_rejected() {
        assert!(ConnectX5Codec.read_tx_descriptor(&[0u8; 10]).is_none());
        assert!(ConnectX6DxCodec.read_tx_descriptor(&[0u8; 10]).is_none());
    }
}
