//! A virtio 1.0 split virtqueue, and the FLD adapter for it.
//!
//! The paper's portability discussion (§ 6) names this extension point:
//! *"some NICs offer standardized interfaces such as virtio, and FlexDriver
//! can be modified to support them. Thus, an accelerator using FlexDriver
//! for a virtio-compatible NIC will work with any compliant NIC."*
//!
//! This module implements the split-ring virtqueue (descriptor table +
//! available ring + used ring) faithfully enough to demonstrate that FLD's
//! § 5.2 trick — storing a compressed form and expanding NIC-format
//! descriptors on the fly — applies unchanged to the standardized
//! interface: [`FldVirtioTx`] stores 8-byte compressed entries and
//! materializes 16-byte virtio descriptors only when the device reads
//! them.

use crate::wqe::{CompressedTxDescriptor, ExpansionContext, TxDescriptor};

/// Size of a virtio split-ring descriptor.
pub const VIRTQ_DESC_SIZE: usize = 16;

/// Descriptor flag: buffer continues via the `next` field.
pub const VIRTQ_DESC_F_NEXT: u16 = 1;

/// Descriptor flag: buffer is device-writable (receive).
pub const VIRTQ_DESC_F_WRITE: u16 = 2;

/// A virtio split-ring descriptor (struct virtq_desc).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VirtqDesc {
    /// Guest-physical buffer address.
    pub addr: u64,
    /// Buffer length.
    pub len: u32,
    /// VIRTQ_DESC_F_* flags.
    pub flags: u16,
    /// Next descriptor in the chain (valid when F_NEXT).
    pub next: u16,
}

impl VirtqDesc {
    /// Encodes to the 16-byte little-endian wire layout.
    pub fn to_bytes(self) -> [u8; VIRTQ_DESC_SIZE] {
        let mut out = [0u8; VIRTQ_DESC_SIZE];
        out[0..8].copy_from_slice(&self.addr.to_le_bytes());
        out[8..12].copy_from_slice(&self.len.to_le_bytes());
        out[12..14].copy_from_slice(&self.flags.to_le_bytes());
        out[14..16].copy_from_slice(&self.next.to_le_bytes());
        out
    }

    /// Decodes the 16-byte layout.
    pub fn from_bytes(b: &[u8; VIRTQ_DESC_SIZE]) -> Self {
        VirtqDesc {
            addr: u64::from_le_bytes(b[0..8].try_into().expect("8 bytes")),
            len: u32::from_le_bytes(b[8..12].try_into().expect("4 bytes")),
            flags: u16::from_le_bytes(b[12..14].try_into().expect("2 bytes")),
            next: u16::from_le_bytes(b[14..16].try_into().expect("2 bytes")),
        }
    }
}

/// An entry of the used ring (struct virtq_used_elem).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VirtqUsedElem {
    /// Head descriptor id of the completed chain.
    pub id: u32,
    /// Bytes the device wrote (receive) or 0 (transmit).
    pub len: u32,
}

/// A split virtqueue: the driver-side state machine plus the rings the
/// device reads/writes.
///
/// # Examples
///
/// ```
/// use fld_nic::virtio::SplitQueue;
///
/// let mut q = SplitQueue::new(8);
/// let head = q.add_chain(&[(0x1000, 100, false), (0x2000, 50, false)]).unwrap();
/// // Device side:
/// let (h, chain) = q.device_pop().unwrap();
/// assert_eq!(h, head);
/// assert_eq!(chain.len(), 2);
/// q.device_push_used(h, 0);
/// // Driver reaps the completion and the descriptors recycle.
/// assert_eq!(q.driver_reap(), vec![fld_nic::virtio::VirtqUsedElem { id: h as u32, len: 0 }]);
/// ```
#[derive(Debug)]
pub struct SplitQueue {
    size: u16,
    desc: Vec<VirtqDesc>,
    free_head: Vec<u16>,
    // Available ring.
    avail: Vec<u16>,
    avail_idx: u16,
    device_last_avail: u16,
    // Used ring.
    used: Vec<VirtqUsedElem>,
    used_idx: u16,
    driver_last_used: u16,
}

impl SplitQueue {
    /// Creates a queue of `size` descriptors.
    ///
    /// # Panics
    ///
    /// Panics unless `size` is a nonzero power of two (virtio requirement).
    pub fn new(size: u16) -> Self {
        assert!(
            size > 0 && size.is_power_of_two(),
            "queue size must be a power of two"
        );
        SplitQueue {
            size,
            desc: vec![VirtqDesc::default(); size as usize],
            free_head: (0..size).rev().collect(),
            avail: vec![0; size as usize],
            avail_idx: 0,
            device_last_avail: 0,
            used: vec![VirtqUsedElem { id: 0, len: 0 }; size as usize],
            used_idx: 0,
            driver_last_used: 0,
        }
    }

    /// Queue size.
    pub fn size(&self) -> u16 {
        self.size
    }

    /// Free descriptors remaining.
    pub fn free_descriptors(&self) -> usize {
        self.free_head.len()
    }

    /// Driver: posts a buffer chain of `(addr, len, device_writable)`;
    /// returns the head descriptor id, or `None` when the table is full.
    pub fn add_chain(&mut self, buffers: &[(u64, u32, bool)]) -> Option<u16> {
        if buffers.is_empty() || self.free_head.len() < buffers.len() {
            return None;
        }
        let ids: Vec<u16> = (0..buffers.len())
            .map(|_| self.free_head.pop().expect("checked"))
            .collect();
        for (i, &(addr, len, writable)) in buffers.iter().enumerate() {
            let mut flags = if writable { VIRTQ_DESC_F_WRITE } else { 0 };
            let next = if i + 1 < ids.len() {
                flags |= VIRTQ_DESC_F_NEXT;
                ids[i + 1]
            } else {
                0
            };
            self.desc[ids[i] as usize] = VirtqDesc {
                addr,
                len,
                flags,
                next,
            };
        }
        let head = ids[0];
        let slot = (self.avail_idx % self.size) as usize;
        self.avail[slot] = head;
        self.avail_idx = self.avail_idx.wrapping_add(1);
        Some(head)
    }

    /// Device: pops the next available chain, returning the head id and the
    /// resolved descriptor chain.
    pub fn device_pop(&mut self) -> Option<(u16, Vec<VirtqDesc>)> {
        if self.device_last_avail == self.avail_idx {
            return None;
        }
        let slot = (self.device_last_avail % self.size) as usize;
        let head = self.avail[slot];
        self.device_last_avail = self.device_last_avail.wrapping_add(1);
        let mut chain = Vec::new();
        let mut idx = head;
        loop {
            let d = self.desc[idx as usize];
            chain.push(d);
            if d.flags & VIRTQ_DESC_F_NEXT == 0 || chain.len() >= self.size as usize {
                break;
            }
            idx = d.next;
        }
        Some((head, chain))
    }

    /// Device: marks a chain used, having written `len` bytes.
    pub fn device_push_used(&mut self, head: u16, len: u32) {
        let slot = (self.used_idx % self.size) as usize;
        self.used[slot] = VirtqUsedElem {
            id: head as u32,
            len,
        };
        self.used_idx = self.used_idx.wrapping_add(1);
    }

    /// Driver: reaps completions, recycling their descriptor chains.
    pub fn driver_reap(&mut self) -> Vec<VirtqUsedElem> {
        let mut out = Vec::new();
        while self.driver_last_used != self.used_idx {
            let slot = (self.driver_last_used % self.size) as usize;
            let elem = self.used[slot];
            self.driver_last_used = self.driver_last_used.wrapping_add(1);
            // Walk the chain to free every descriptor.
            let mut idx = elem.id as u16;
            loop {
                let d = self.desc[idx as usize];
                self.free_head.push(idx);
                if d.flags & VIRTQ_DESC_F_NEXT == 0 {
                    break;
                }
                idx = d.next;
            }
            out.push(elem);
        }
        out
    }
}

/// FLD's transmit adapter for a virtio NIC: the same compressed-storage /
/// expand-on-read design as the ConnectX path, targeting the standardized
/// 16-byte descriptor instead of the vendor format.
#[derive(Debug)]
pub struct FldVirtioTx {
    expansion: ExpansionContext,
    /// Compressed entries, indexed by virtio descriptor id.
    entries: Vec<Option<CompressedTxDescriptor>>,
    free: Vec<u16>,
}

impl FldVirtioTx {
    /// Creates an adapter for a `size`-descriptor virtqueue.
    pub fn new(size: u16) -> Self {
        FldVirtioTx {
            expansion: ExpansionContext::default(),
            entries: vec![None; size as usize],
            free: (0..size).rev().collect(),
        }
    }

    /// On-chip bytes FLD stores per descriptor (the compressed form).
    pub const COMPRESSED_BYTES: usize = crate::wqe::FLD_TX_DESC_SIZE;

    /// Enqueues a packet of `len` bytes in on-chip slot `buf_id`; returns
    /// the virtio descriptor id, or `None` when full.
    pub fn enqueue(&mut self, buf_id: u16, len: u16) -> Option<u16> {
        let id = self.free.pop()?;
        self.entries[id as usize] = Some(CompressedTxDescriptor {
            buf_id,
            offset64: 0,
            len,
            flags: 0,
        });
        Some(id)
    }

    /// Handles a device read of descriptor `id`: expands the compressed
    /// entry into the standardized 16-byte virtio descriptor on the fly.
    pub fn read_descriptor(&self, id: u16) -> Option<[u8; VIRTQ_DESC_SIZE]> {
        let c = self.entries[id as usize]?;
        let d: TxDescriptor = self.expansion.expand(&c);
        Some(
            VirtqDesc {
                addr: d.addr,
                len: d.len,
                flags: 0,
                next: 0,
            }
            .to_bytes(),
        )
    }

    /// Completes descriptor `id`, recycling it.
    ///
    /// # Panics
    ///
    /// Panics on double completion.
    pub fn complete(&mut self, id: u16) {
        assert!(
            self.entries[id as usize].take().is_some(),
            "double completion of {id}"
        );
        self.free.push(id);
    }

    /// Memory shrink factor versus storing native virtio descriptors.
    pub fn shrink_ratio() -> f64 {
        VIRTQ_DESC_SIZE as f64 / Self::COMPRESSED_BYTES as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn desc_wire_round_trip() {
        let d = VirtqDesc {
            addr: 0xdead_beef_0000_1234,
            len: 9000,
            flags: 3,
            next: 42,
        };
        assert_eq!(VirtqDesc::from_bytes(&d.to_bytes()), d);
    }

    #[test]
    fn single_buffer_cycle() {
        let mut q = SplitQueue::new(4);
        let head = q.add_chain(&[(0x1000, 64, false)]).unwrap();
        assert_eq!(q.free_descriptors(), 3);
        let (h, chain) = q.device_pop().unwrap();
        assert_eq!(h, head);
        assert_eq!(chain.len(), 1);
        assert_eq!(chain[0].addr, 0x1000);
        assert!(q.device_pop().is_none());
        q.device_push_used(h, 0);
        let used = q.driver_reap();
        assert_eq!(used.len(), 1);
        assert_eq!(q.free_descriptors(), 4);
    }

    #[test]
    fn chains_resolve_in_order() {
        let mut q = SplitQueue::new(8);
        q.add_chain(&[(1, 10, false), (2, 20, true), (3, 30, true)])
            .unwrap();
        let (_, chain) = q.device_pop().unwrap();
        assert_eq!(
            chain.iter().map(|d| d.addr).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(chain[0].flags, VIRTQ_DESC_F_NEXT);
        assert_eq!(chain[1].flags, VIRTQ_DESC_F_NEXT | VIRTQ_DESC_F_WRITE);
        assert_eq!(chain[2].flags, VIRTQ_DESC_F_WRITE);
    }

    #[test]
    fn table_exhaustion_and_recycle() {
        let mut q = SplitQueue::new(4);
        for _ in 0..4 {
            q.add_chain(&[(0, 1, false)]).unwrap();
        }
        assert!(q.add_chain(&[(0, 1, false)]).is_none());
        let (h, _) = q.device_pop().unwrap();
        q.device_push_used(h, 0);
        q.driver_reap();
        assert!(q.add_chain(&[(0, 1, false)]).is_some());
    }

    #[test]
    fn ring_indices_wrap() {
        let mut q = SplitQueue::new(2);
        for round in 0..1000u32 {
            let h = q.add_chain(&[(round as u64, 8, false)]).unwrap();
            let (h2, chain) = q.device_pop().unwrap();
            assert_eq!(h, h2);
            assert_eq!(chain[0].addr, round as u64);
            q.device_push_used(h2, 0);
            assert_eq!(q.driver_reap().len(), 1);
        }
    }

    #[test]
    fn out_of_order_completion() {
        let mut q = SplitQueue::new(8);
        let a = q.add_chain(&[(1, 1, false)]).unwrap();
        let b = q.add_chain(&[(2, 2, false)]).unwrap();
        let (ha, _) = q.device_pop().unwrap();
        let (hb, _) = q.device_pop().unwrap();
        assert_eq!((ha, hb), (a, b));
        // Device completes b before a (allowed by the spec).
        q.device_push_used(hb, 0);
        q.device_push_used(ha, 0);
        let used = q.driver_reap();
        assert_eq!(used[0].id, b as u32);
        assert_eq!(used[1].id, a as u32);
        assert_eq!(q.free_descriptors(), 8);
    }

    #[test]
    fn fld_adapter_expands_on_read() {
        let mut fld = FldVirtioTx::new(16);
        let id = fld.enqueue(37, 1500).unwrap();
        let wire = fld.read_descriptor(id).expect("entry visible");
        let d = VirtqDesc::from_bytes(&wire);
        assert_eq!(d.len, 1500);
        // Address points into the on-chip pool at slot 37.
        assert_eq!(d.addr, ExpansionContext::default().pool_base + 37 * 64);
        fld.complete(id);
        assert!(fld.read_descriptor(id).is_none());
    }

    #[test]
    fn fld_adapter_halves_descriptor_memory() {
        assert_eq!(FldVirtioTx::shrink_ratio(), 2.0);
    }

    #[test]
    fn fld_adapter_exhaustion() {
        let mut fld = FldVirtioTx::new(2);
        let a = fld.enqueue(0, 64).unwrap();
        let _b = fld.enqueue(1, 64).unwrap();
        assert!(fld.enqueue(2, 64).is_none());
        fld.complete(a);
        assert!(fld.enqueue(3, 64).is_some());
    }

    #[test]
    #[should_panic]
    fn double_complete_panics() {
        let mut fld = FldVirtioTx::new(2);
        let id = fld.enqueue(0, 64).unwrap();
        fld.complete(id);
        fld.complete(id);
    }
}
