//! Traffic shaping and policing — the NIC QoS features the IoT
//! authentication offload leans on: *"We use the traffic shaping
//! capabilities of the NIC to implement maximum bandwidth shaping for the
//! accelerator"* (§ 7), evaluated in § 8.2.3.

use std::collections::HashMap;

use fld_sim::link::TokenBucket;
use fld_sim::time::{Bandwidth, SimTime};

/// Verdict of offering a packet to a policer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicerVerdict {
    /// Within rate: forward.
    Conform,
    /// Exceeds rate: drop.
    Exceed,
    /// No policer installed for this key: forward.
    Unpoliced,
}

/// A set of per-context (tenant/flow) maximum-rate policers.
///
/// # Examples
///
/// ```
/// use fld_nic::shaper::{PolicerSet, PolicerVerdict};
/// use fld_sim::time::{Bandwidth, SimTime};
///
/// let mut p = PolicerSet::new();
/// p.install(7, Bandwidth::gbps(6.0), 16 * 1024);
/// assert_eq!(p.offer(7, SimTime::ZERO, 1500), PolicerVerdict::Conform);
/// assert_eq!(p.offer(9, SimTime::ZERO, 1500), PolicerVerdict::Unpoliced);
/// ```
#[derive(Debug, Default)]
pub struct PolicerSet {
    policers: HashMap<u32, TokenBucket>,
    conformed: u64,
    exceeded: u64,
}

impl PolicerSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        PolicerSet::default()
    }

    /// Installs (or replaces) a maximum-rate policer for `context`.
    pub fn install(&mut self, context: u32, rate: Bandwidth, burst_bytes: u64) {
        self.policers
            .insert(context, TokenBucket::new(rate, burst_bytes));
    }

    /// Removes the policer for `context`.
    pub fn remove(&mut self, context: u32) -> bool {
        self.policers.remove(&context).is_some()
    }

    /// Offers a packet of `bytes` for `context` at time `now`.
    pub fn offer(&mut self, context: u32, now: SimTime, bytes: u64) -> PolicerVerdict {
        match self.policers.get_mut(&context) {
            None => PolicerVerdict::Unpoliced,
            Some(tb) => {
                if tb.earliest_send(now, bytes) <= now {
                    tb.consume(now, bytes);
                    self.conformed += 1;
                    PolicerVerdict::Conform
                } else {
                    self.exceeded += 1;
                    PolicerVerdict::Exceed
                }
            }
        }
    }

    /// Packets that conformed.
    pub fn conformed(&self) -> u64 {
        self.conformed
    }

    /// Packets dropped as exceeding their rate.
    pub fn exceeded(&self) -> u64 {
        self.exceeded
    }

    /// Number of installed policers.
    pub fn len(&self) -> usize {
        self.policers.len()
    }

    /// Whether no policers are installed.
    pub fn is_empty(&self) -> bool {
        self.policers.is_empty()
    }

    /// Total token bytes available across all policers after refilling to
    /// `now` — the shaper-token flight-recorder probe.
    pub fn total_tokens(&mut self, now: SimTime) -> f64 {
        self.policers
            .values_mut()
            .map(|tb| tb.level_bytes(now))
            .sum()
    }

    /// Total burst capacity in bytes across all policers (the token
    /// pool's upper bound, audited against [`PolicerSet::total_tokens`]).
    pub fn total_burst_bytes(&self) -> u64 {
        self.policers.values().map(TokenBucket::burst_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fld_sim::time::SimDuration;

    #[test]
    fn polices_to_configured_rate() {
        let mut p = PolicerSet::new();
        p.install(1, Bandwidth::gbps(1.0), 3000);
        // Offer 2 Gbps of 1500 B frames for 1 ms: every 6 us (1500 B at 2 Gbps).
        let mut now = SimTime::ZERO;
        let mut passed = 0u64;
        let mut total = 0u64;
        while now < SimTime::from_millis(1) {
            if p.offer(1, now, 1500) == PolicerVerdict::Conform {
                passed += 1;
            }
            total += 1;
            now += SimDuration::from_nanos(6000);
        }
        let ratio = passed as f64 / total as f64;
        assert!((ratio - 0.5).abs() < 0.05, "pass ratio {ratio}");
    }

    #[test]
    fn under_rate_all_conform() {
        let mut p = PolicerSet::new();
        p.install(1, Bandwidth::gbps(10.0), 30000);
        let mut now = SimTime::ZERO;
        for _ in 0..100 {
            assert_eq!(p.offer(1, now, 1500), PolicerVerdict::Conform);
            now += SimDuration::from_micros(10); // 1.2 Gbps offered
        }
        assert_eq!(p.exceeded(), 0);
    }

    #[test]
    fn contexts_are_independent() {
        let mut p = PolicerSet::new();
        p.install(1, Bandwidth::gbps(1.0), 1500);
        p.install(2, Bandwidth::gbps(1.0), 1500);
        assert_eq!(p.offer(1, SimTime::ZERO, 1500), PolicerVerdict::Conform);
        // Context 1 is exhausted, context 2 is untouched.
        assert_eq!(p.offer(1, SimTime::ZERO, 1500), PolicerVerdict::Exceed);
        assert_eq!(p.offer(2, SimTime::ZERO, 1500), PolicerVerdict::Conform);
    }

    #[test]
    fn remove_uninstalls() {
        let mut p = PolicerSet::new();
        p.install(5, Bandwidth::gbps(1.0), 1500);
        assert!(p.remove(5));
        assert!(!p.remove(5));
        assert_eq!(p.offer(5, SimTime::ZERO, 1500), PolicerVerdict::Unpoliced);
    }
}
