//! Work-queue elements (descriptors) and completion-queue entries, in both
//! the NIC's software format and FlexDriver's compressed internal format.
//!
//! Table 2b of the paper gives the sizes this module reproduces exactly:
//!
//! | structure              | software | FLD  |
//! |------------------------|----------|------|
//! | Tx descriptor          | 64 B     | 8 B  |
//! | Rx descriptor          | 16 B     | —    |
//! | Completion queue entry | 64 B     | 15 B |
//! | Producer index         | 4 B      | 4 B  |
//!
//! The compression is possible because *"the FLD transmit queues always
//! point to on-chip buffers, which are addressed with few bits, whereas the
//! NIC interface accepts a 64-bit address"* (§ 5.2). FLD stores the
//! compressed form and expands it on the fly when the NIC reads the ring.

use bytes::{BufMut, BytesMut};

/// Size of a software (ConnectX-style) transmit descriptor.
pub const SW_TX_DESC_SIZE: usize = 64;

/// Size of a software receive descriptor (scatter entry).
pub const SW_RX_DESC_SIZE: usize = 16;

/// Size of a software completion-queue entry.
pub const SW_CQE_SIZE: usize = 64;

/// Size of FLD's compressed transmit descriptor.
pub const FLD_TX_DESC_SIZE: usize = 8;

/// Size of FLD's compressed completion entry.
pub const FLD_CQE_SIZE: usize = 15;

/// Size of a producer index.
pub const PRODUCER_INDEX_SIZE: usize = 4;

/// A transmit descriptor in the NIC's native (software-driver) layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxDescriptor {
    /// Buffer address in the device's address space (64-bit in the NIC
    /// format; FLD buffers need far fewer bits).
    pub addr: u64,
    /// Payload length in bytes.
    pub len: u32,
    /// Memory key (constant for FLD's single on-chip region).
    pub lkey: u32,
    /// Send queue this descriptor belongs to.
    pub queue: u16,
    /// Whether a completion should be signalled (selective signalling).
    pub signalled: bool,
    /// Offload flags requested (checksum, VLAN…), opaque to the model.
    pub offload_flags: u16,
}

/// FLD's compressed transmit descriptor: an on-chip buffer id, a length and
/// flags packed into eight bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompressedTxDescriptor {
    /// On-chip buffer identifier (16 bits suffice: the pool holds 4096
    /// descriptors in the prototype, § 6).
    pub buf_id: u16,
    /// Offset within the buffer in 64 B units (buffer sharing at fine
    /// granularity, § 5.2).
    pub offset64: u16,
    /// Payload length.
    pub len: u16,
    /// Queue bits + signalled flag.
    pub flags: u16,
}

impl CompressedTxDescriptor {
    /// Serializes to the 8-byte wire form FLD stores on-chip.
    pub fn to_bytes(self) -> [u8; FLD_TX_DESC_SIZE] {
        let mut out = [0u8; FLD_TX_DESC_SIZE];
        out[0..2].copy_from_slice(&self.buf_id.to_be_bytes());
        out[2..4].copy_from_slice(&self.offset64.to_be_bytes());
        out[4..6].copy_from_slice(&self.len.to_be_bytes());
        out[6..8].copy_from_slice(&self.flags.to_be_bytes());
        out
    }

    /// Parses the 8-byte form.
    pub fn from_bytes(b: &[u8; FLD_TX_DESC_SIZE]) -> Self {
        CompressedTxDescriptor {
            buf_id: u16::from_be_bytes([b[0], b[1]]),
            offset64: u16::from_be_bytes([b[2], b[3]]),
            len: u16::from_be_bytes([b[4], b[5]]),
            flags: u16::from_be_bytes([b[6], b[7]]),
        }
    }
}

/// Parameters of FLD's descriptor expansion: the fixed pieces of the NIC
/// descriptor that need not be stored per entry.
#[derive(Debug, Clone, Copy)]
pub struct ExpansionContext {
    /// Base device address of the on-chip buffer pool.
    pub pool_base: u64,
    /// Bytes per buffer slot.
    pub slot_bytes: u32,
    /// The single lkey covering the pool.
    pub lkey: u32,
}

impl Default for ExpansionContext {
    fn default() -> Self {
        ExpansionContext {
            pool_base: 0x1000_0000,
            slot_bytes: 64,
            lkey: 0x42,
        }
    }
}

impl ExpansionContext {
    /// Compresses a full descriptor into FLD's 8-byte form.
    ///
    /// # Panics
    ///
    /// Panics if the descriptor does not point into the pool or exceeds the
    /// compressed field widths — conditions the FLD hardware rules out by
    /// construction.
    pub fn compress(&self, d: &TxDescriptor) -> CompressedTxDescriptor {
        assert!(d.addr >= self.pool_base, "address below pool base");
        let off = d.addr - self.pool_base;
        let slot = off / self.slot_bytes as u64;
        let within = off % self.slot_bytes as u64;
        assert_eq!(within % 64, 0, "sub-64B offsets unsupported");
        assert!(slot <= u16::MAX as u64, "buffer id overflow");
        assert!(d.len <= u16::MAX as u32, "length overflow");
        assert_eq!(d.lkey, self.lkey, "foreign lkey");
        let flags = (d.queue & 0x7fff) | if d.signalled { 0x8000 } else { 0 };
        CompressedTxDescriptor {
            buf_id: slot as u16,
            offset64: (within / 64) as u16,
            len: d.len as u16,
            flags,
        }
    }

    /// Expands the compressed form back into the NIC's native descriptor —
    /// the operation FLD performs on the fly when the NIC reads its ring.
    pub fn expand(&self, c: &CompressedTxDescriptor) -> TxDescriptor {
        TxDescriptor {
            addr: self.pool_base
                + c.buf_id as u64 * self.slot_bytes as u64
                + c.offset64 as u64 * 64,
            len: c.len as u32,
            lkey: self.lkey,
            queue: c.flags & 0x7fff,
            signalled: c.flags & 0x8000 != 0,
            offload_flags: 0,
        }
    }

    /// Serializes an expanded descriptor into the NIC's 64-byte wire form
    /// (as the NIC's DMA engine would read it).
    pub fn expand_to_wire(&self, c: &CompressedTxDescriptor, out: &mut BytesMut) {
        let d = self.expand(c);
        let start = out.len();
        out.put_u64(d.addr);
        out.put_u32(d.len);
        out.put_u32(d.lkey);
        out.put_u16(d.queue);
        out.put_u8(d.signalled as u8);
        out.put_u16(d.offload_flags);
        out.resize(start + SW_TX_DESC_SIZE, 0);
    }
}

/// A completion-queue entry in the model's canonical form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cqe {
    /// Queue the completion belongs to.
    pub queue: u16,
    /// Completed descriptor index (Tx) or buffer offset (Rx).
    pub wqe_index: u16,
    /// Bytes transferred.
    pub byte_len: u32,
    /// RSS hash computed by the NIC (receive offload metadata, § 5.5).
    pub rss_hash: u32,
    /// Flow tag / tenant context id the eSwitch attached (§ 5.4).
    pub context_id: u32,
    /// Whether L3/L4 checksums validated.
    pub checksum_ok: bool,
    /// Whether this CQE ends a message (RDMA) or frame (Ethernet).
    pub end_of_message: bool,
}

impl Cqe {
    /// Serializes to FLD's compressed 15-byte form.
    pub fn to_compressed(self) -> [u8; FLD_CQE_SIZE] {
        let mut out = [0u8; FLD_CQE_SIZE];
        out[0..2].copy_from_slice(&self.queue.to_be_bytes());
        out[2..4].copy_from_slice(&self.wqe_index.to_be_bytes());
        out[4..7].copy_from_slice(&self.byte_len.to_be_bytes()[1..]);
        out[7..11].copy_from_slice(&self.rss_hash.to_be_bytes());
        out[11..14].copy_from_slice(&self.context_id.to_be_bytes()[1..]);
        out[14] = (self.checksum_ok as u8) | ((self.end_of_message as u8) << 1);
        out
    }

    /// Parses the compressed 15-byte form.
    pub fn from_compressed(b: &[u8; FLD_CQE_SIZE]) -> Self {
        Cqe {
            queue: u16::from_be_bytes([b[0], b[1]]),
            wqe_index: u16::from_be_bytes([b[2], b[3]]),
            byte_len: u32::from_be_bytes([0, b[4], b[5], b[6]]),
            rss_hash: u32::from_be_bytes([b[7], b[8], b[9], b[10]]),
            context_id: u32::from_be_bytes([0, b[11], b[12], b[13]]),
            checksum_ok: b[14] & 1 != 0,
            end_of_message: b[14] & 2 != 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> ExpansionContext {
        ExpansionContext::default()
    }

    #[test]
    fn descriptor_compression_round_trips() {
        let c = ctx();
        let d = TxDescriptor {
            addr: c.pool_base + 37 * 64,
            len: 1500,
            lkey: c.lkey,
            queue: 1,
            signalled: true,
            offload_flags: 0,
        };
        let comp = c.compress(&d);
        assert_eq!(comp.to_bytes().len(), FLD_TX_DESC_SIZE);
        let back = c.expand(&comp);
        assert_eq!(back, d);
    }

    #[test]
    fn compressed_bytes_round_trip() {
        let comp = CompressedTxDescriptor {
            buf_id: 300,
            offset64: 2,
            len: 999,
            flags: 0x8001,
        };
        assert_eq!(CompressedTxDescriptor::from_bytes(&comp.to_bytes()), comp);
    }

    #[test]
    fn wire_expansion_is_64_bytes() {
        let c = ctx();
        let comp = CompressedTxDescriptor {
            buf_id: 1,
            offset64: 0,
            len: 64,
            flags: 0,
        };
        let mut buf = BytesMut::new();
        c.expand_to_wire(&comp, &mut buf);
        assert_eq!(buf.len(), SW_TX_DESC_SIZE);
        // Address field decodes back.
        let addr = u64::from_be_bytes(buf[0..8].try_into().unwrap());
        assert_eq!(addr, c.pool_base + 64);
    }

    #[test]
    #[should_panic]
    fn compress_rejects_foreign_address() {
        let c = ctx();
        let d = TxDescriptor {
            addr: 0, // below pool base
            len: 64,
            lkey: c.lkey,
            queue: 0,
            signalled: false,
            offload_flags: 0,
        };
        let _ = c.compress(&d);
    }

    #[test]
    fn cqe_round_trips() {
        let cqe = Cqe {
            queue: 7,
            wqe_index: 0x1234,
            byte_len: 9000,
            rss_hash: 0xdeadbeef,
            context_id: 0x00aabbcc,
            checksum_ok: true,
            end_of_message: false,
        };
        let bytes = cqe.to_compressed();
        assert_eq!(bytes.len(), FLD_CQE_SIZE);
        assert_eq!(Cqe::from_compressed(&bytes), cqe);
    }

    #[test]
    fn shrink_ratios_match_table_2b() {
        assert_eq!(SW_TX_DESC_SIZE / FLD_TX_DESC_SIZE, 8);
        assert!(SW_CQE_SIZE as f64 / FLD_CQE_SIZE as f64 > 4.0);
        assert_eq!(PRODUCER_INDEX_SIZE, 4);
    }
}
