//! The embedded switch (eSwitch): match-action classification with the
//! FLD-E acceleration extension.
//!
//! NICs steer packets between vPorts with flexible match-action rules
//! (paper § 2.3). FLD-E extends the action set: *"The new actions send
//! packets to the accelerator along with appropriate metadata identifying
//! the associated VM and the following table to process packets after
//! acceleration. After processing, the accelerator returns the packet to
//! the NIC, tagged with the next-table ID so that the NIC can resume
//! processing the packet where the acceleration action took off."* (§ 5.3)

use crate::packet::PacketMeta;

/// A single field predicate (None = wildcard).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchSpec {
    /// Match IPv4 fragments (any position).
    pub is_fragment: Option<bool>,
    /// Match on VXLAN presence.
    pub is_vxlan: Option<bool>,
    /// Match a specific VNI.
    pub vni: Option<u32>,
    /// Match the IP protocol.
    pub ip_proto: Option<u8>,
    /// Match the L4 destination port.
    pub dst_port: Option<u16>,
    /// Match the L4 source port.
    pub src_port: Option<u16>,
    /// Match the destination IP (exact).
    pub dst_ip: Option<fld_net::Ipv4Addr>,
    /// Match the source IP (exact).
    pub src_ip: Option<fld_net::Ipv4Addr>,
    /// Match an already-assigned context id (post-acceleration stages).
    pub context_id: Option<u32>,
}

impl MatchSpec {
    /// The match-everything wildcard.
    pub fn any() -> Self {
        MatchSpec::default()
    }

    /// Whether `meta` satisfies every present predicate.
    pub fn matches(&self, meta: &PacketMeta) -> bool {
        fn ok<T: PartialEq>(spec: Option<T>, actual: T) -> bool {
            spec.is_none_or(|s| s == actual)
        }
        ok(self.is_fragment, meta.is_fragment)
            && ok(self.is_vxlan, meta.vni.is_some())
            && (self.vni.is_none() || self.vni == meta.vni_u32())
            && ok(self.ip_proto, meta.flow.proto)
            && ok(self.dst_port, meta.flow.dst_port)
            && ok(self.src_port, meta.flow.src_port)
            && ok(self.dst_ip, meta.flow.dst)
            && ok(self.src_ip, meta.flow.src)
            && ok(self.context_id, meta.context_id)
    }
}

/// An action attached to a rule. Rules may carry several (e.g. tag then
/// forward).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Drop the packet.
    Drop,
    /// Deliver to a host receive queue set via RSS context `rss_id`.
    ToHostRss {
        /// RSS context selecting among host queues.
        rss_id: u16,
    },
    /// Deliver directly to a specific host queue.
    ToHostQueue {
        /// Host receive queue index.
        queue: u16,
    },
    /// Deliver to an FLD receive queue — the FLD-E acceleration action,
    /// carrying the table to resume at when the packet returns.
    ToAccelerator {
        /// FLD receive queue.
        queue: u16,
        /// eSwitch table to resume processing at on return.
        next_table: u16,
    },
    /// Transmit out of a wire port.
    ToWire {
        /// Physical port index.
        port: u8,
    },
    /// Strip the VXLAN tunnel (hardware decapsulation offload).
    VxlanDecap,
    /// Tag the packet with a tenant/context id (§ 5.4).
    TagContext {
        /// Context id to attach.
        context: u32,
    },
    /// Continue matching at another table.
    GotoTable {
        /// Target table id.
        table: u16,
    },
}

/// Terminal verdict of a classification pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Dropped (explicitly, or due to a table miss).
    Drop,
    /// Deliver to host via an RSS context.
    HostRss {
        /// RSS context id.
        rss_id: u16,
    },
    /// Deliver to a specific host queue.
    HostQueue {
        /// Host queue index.
        queue: u16,
    },
    /// Deliver to the accelerator via FLD.
    Accelerator {
        /// FLD queue index.
        queue: u16,
        /// Table to resume at when the packet comes back.
        next_table: u16,
    },
    /// Transmit to the wire.
    Wire {
        /// Physical port.
        port: u8,
    },
}

/// Side effects applied to the packet during classification.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SideEffects {
    /// Tunnel was decapsulated (the packet's metadata must be re-derived
    /// from the inner frame by the caller).
    pub decapped: bool,
    /// Context id assigned.
    pub tagged: Option<u32>,
}

/// A classification rule.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Higher priority wins within a table.
    pub priority: i32,
    /// Predicates.
    pub spec: MatchSpec,
    /// Actions applied on match.
    pub actions: Vec<Action>,
}

/// One match-action table.
#[derive(Debug, Default)]
pub struct Table {
    rules: Vec<Rule>,
}

impl Table {
    fn best_match(&self, meta: &PacketMeta) -> Option<&Rule> {
        self.rules
            .iter()
            .filter(|r| r.spec.matches(meta))
            .max_by_key(|r| r.priority)
    }
}

/// The multi-table classification pipeline of one direction (e.g. the
/// eSwitch FDB followed by per-vport tables).
#[derive(Debug, Default)]
pub struct Pipeline {
    tables: Vec<Table>,
    hits: u64,
    misses: u64,
}

/// Maximum goto-chain depth (guards against rule cycles).
const MAX_HOPS: usize = 16;

impl Pipeline {
    /// Creates a pipeline with `tables` empty tables.
    pub fn new(tables: usize) -> Self {
        Pipeline {
            tables: (0..tables).map(|_| Table::default()).collect(),
            hits: 0,
            misses: 0,
        }
    }

    /// Installs a rule into `table`.
    ///
    /// # Panics
    ///
    /// Panics if `table` does not exist.
    pub fn install(&mut self, table: u16, rule: Rule) {
        self.tables[table as usize].rules.push(rule);
    }

    /// Removes every rule (from every table) for which `pred` holds —
    /// how a VF hot-unplug evicts the tenant's steering entries from
    /// the shared TCAM. Returns the number of rules removed.
    pub fn remove_where(&mut self, pred: impl Fn(&Rule) -> bool) -> usize {
        let mut removed = 0;
        for t in &mut self.tables {
            let before = t.rules.len();
            t.rules.retain(|r| !pred(r));
            removed += before - t.rules.len();
        }
        removed
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Rule hits since creation.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Table misses since creation.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Classifies a packet starting from `start_table`, applying tag and
    /// decap side effects to `meta` along the way.
    ///
    /// Packets that miss every rule are dropped, matching default-deny
    /// eSwitch semantics.
    pub fn classify(&mut self, meta: &mut PacketMeta, start_table: u16) -> (Verdict, SideEffects) {
        let mut table = start_table as usize;
        let mut effects = SideEffects::default();
        for _ in 0..MAX_HOPS {
            let Some(t) = self.tables.get(table) else {
                self.misses += 1;
                return (Verdict::Drop, effects);
            };
            let Some(rule) = t.best_match(meta) else {
                self.misses += 1;
                return (Verdict::Drop, effects);
            };
            self.hits += 1;
            let mut next: Option<usize> = None;
            for action in &rule.actions {
                match *action {
                    Action::Drop => return (Verdict::Drop, effects),
                    Action::ToHostRss { rss_id } => return (Verdict::HostRss { rss_id }, effects),
                    Action::ToHostQueue { queue } => {
                        return (Verdict::HostQueue { queue }, effects)
                    }
                    Action::ToAccelerator { queue, next_table } => {
                        return (Verdict::Accelerator { queue, next_table }, effects)
                    }
                    Action::ToWire { port } => return (Verdict::Wire { port }, effects),
                    Action::VxlanDecap => {
                        effects.decapped = true;
                        meta.vni = None;
                    }
                    Action::TagContext { context } => {
                        effects.tagged = Some(context);
                        meta.context_id = context;
                    }
                    Action::GotoTable { table } => next = Some(table as usize),
                }
            }
            match next {
                Some(n) => table = n,
                None => {
                    // A rule with only modifying actions and no verdict:
                    // treat as drop (misconfiguration).
                    return (Verdict::Drop, effects);
                }
            }
        }
        (Verdict::Drop, effects)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fld_net::{FlowKey, Ipv4Addr};

    fn meta(dst_port: u16) -> PacketMeta {
        PacketMeta {
            flow: FlowKey::new(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(10, 0, 0, 2),
                999,
                dst_port,
                17,
            ),
            checksum_ok: true,
            ..PacketMeta::default()
        }
    }

    #[test]
    fn wildcard_matches_everything() {
        assert!(MatchSpec::any().matches(&meta(80)));
        assert!(MatchSpec::any().matches(&PacketMeta::default()));
    }

    #[test]
    fn field_predicates() {
        let spec = MatchSpec {
            dst_port: Some(80),
            ip_proto: Some(17),
            ..MatchSpec::any()
        };
        assert!(spec.matches(&meta(80)));
        assert!(!spec.matches(&meta(81)));
    }

    #[test]
    fn priority_wins() {
        let mut p = Pipeline::new(1);
        p.install(
            0,
            Rule {
                priority: 0,
                spec: MatchSpec::any(),
                actions: vec![Action::Drop],
            },
        );
        p.install(
            0,
            Rule {
                priority: 10,
                spec: MatchSpec {
                    dst_port: Some(80),
                    ..MatchSpec::any()
                },
                actions: vec![Action::ToHostQueue { queue: 3 }],
            },
        );
        let mut m = meta(80);
        assert_eq!(p.classify(&mut m, 0).0, Verdict::HostQueue { queue: 3 });
        let mut m = meta(81);
        assert_eq!(p.classify(&mut m, 0).0, Verdict::Drop);
    }

    #[test]
    fn miss_is_drop() {
        let mut p = Pipeline::new(1);
        p.install(
            0,
            Rule {
                priority: 0,
                spec: MatchSpec {
                    dst_port: Some(443),
                    ..MatchSpec::any()
                },
                actions: vec![Action::ToHostQueue { queue: 0 }],
            },
        );
        let mut m = meta(80);
        assert_eq!(p.classify(&mut m, 0).0, Verdict::Drop);
        assert_eq!(p.misses(), 1);
    }

    #[test]
    fn accelerator_action_carries_next_table() {
        let mut p = Pipeline::new(3);
        p.install(
            0,
            Rule {
                priority: 0,
                spec: MatchSpec {
                    is_fragment: Some(true),
                    ..MatchSpec::any()
                },
                actions: vec![Action::ToAccelerator {
                    queue: 1,
                    next_table: 2,
                }],
            },
        );
        let mut m = meta(80);
        m.is_fragment = true;
        match p.classify(&mut m, 0).0 {
            Verdict::Accelerator { queue, next_table } => {
                assert_eq!(queue, 1);
                assert_eq!(next_table, 2);
            }
            other => panic!("unexpected verdict {other:?}"),
        }
    }

    #[test]
    fn tag_then_goto_chain() {
        let mut p = Pipeline::new(2);
        p.install(
            0,
            Rule {
                priority: 0,
                spec: MatchSpec {
                    dst_port: Some(5683),
                    ..MatchSpec::any()
                },
                actions: vec![
                    Action::TagContext { context: 7 },
                    Action::GotoTable { table: 1 },
                ],
            },
        );
        p.install(
            1,
            Rule {
                priority: 0,
                spec: MatchSpec {
                    context_id: Some(7),
                    ..MatchSpec::any()
                },
                actions: vec![Action::ToAccelerator {
                    queue: 0,
                    next_table: 1,
                }],
            },
        );
        let mut m = meta(5683);
        let (verdict, fx) = p.classify(&mut m, 0);
        assert!(matches!(verdict, Verdict::Accelerator { .. }));
        assert_eq!(fx.tagged, Some(7));
        assert_eq!(m.context_id, 7);
    }

    #[test]
    fn decap_side_effect() {
        let mut p = Pipeline::new(1);
        p.install(
            0,
            Rule {
                priority: 1,
                spec: MatchSpec {
                    is_vxlan: Some(true),
                    ..MatchSpec::any()
                },
                actions: vec![Action::VxlanDecap, Action::GotoTable { table: 0 }],
            },
        );
        p.install(
            0,
            Rule {
                priority: 0,
                spec: MatchSpec {
                    is_vxlan: Some(false),
                    ..MatchSpec::any()
                },
                actions: vec![Action::ToHostRss { rss_id: 0 }],
            },
        );
        let mut m = meta(80);
        m.vni = std::num::NonZeroU32::new(42);
        let (verdict, fx) = p.classify(&mut m, 0);
        assert_eq!(verdict, Verdict::HostRss { rss_id: 0 });
        assert!(fx.decapped);
        assert_eq!(m.vni, None);
    }

    #[test]
    fn goto_cycles_terminate() {
        let mut p = Pipeline::new(2);
        p.install(
            0,
            Rule {
                priority: 0,
                spec: MatchSpec::any(),
                actions: vec![Action::GotoTable { table: 1 }],
            },
        );
        p.install(
            1,
            Rule {
                priority: 0,
                spec: MatchSpec::any(),
                actions: vec![Action::GotoTable { table: 0 }],
            },
        );
        let mut m = meta(80);
        assert_eq!(p.classify(&mut m, 0).0, Verdict::Drop);
    }

    #[test]
    fn modifying_rule_without_verdict_drops() {
        let mut p = Pipeline::new(1);
        p.install(
            0,
            Rule {
                priority: 0,
                spec: MatchSpec::any(),
                actions: vec![Action::TagContext { context: 1 }],
            },
        );
        let mut m = meta(80);
        assert_eq!(p.classify(&mut m, 0).0, Verdict::Drop);
    }
}
