//! SR-IOV-style virtual functions over the eSwitch.
//!
//! A physical NIC port (the PF) is partitioned into virtual functions,
//! one per tenant: each VF owns a bounded slice of the match-action rule
//! space (rules that may only match the VF's own traffic), an optional
//! transmit token-bucket shaper (the per-tenant maximum-bandwidth
//! guarantee the rack isolation experiment measures), and a counter
//! subtree `vf/<n>/...` whose per-VF leaves telescope to the PF
//! aggregates this module maintains independently — the same two-sided
//! bookkeeping contract as every other counter group, enforced by
//! [`fld_sim::audit::Auditor::check_counter_sum`].
//!
//! The partition is enforced at rule-install time, the way mlx5's
//! eSwitch forwards a VF's steering commands through the PF: a rule
//! submitted on behalf of a VF must pin that VF's tenant context (or its
//! bound source address) in its match spec, and each VF has a hard rule
//! quota, so no tenant can classify — or drop — another tenant's
//! packets, and no tenant can exhaust the shared TCAM.

use fld_net::Ipv4Addr;
use fld_sim::counters::{Counter, CounterTree};
use fld_sim::link::TokenBucket;
use fld_sim::time::{Bandwidth, SimTime};

use crate::eswitch::MatchSpec;

/// Static configuration of one virtual function.
#[derive(Debug, Clone, Copy)]
pub struct VfConfig {
    /// The tenant context this VF carries. Rules installed through the
    /// VF must pin it (or `src_ip`); data-path accounting is keyed on it.
    pub context: u32,
    /// Source address bound to the VF, usable instead of the context tag
    /// in rule match specs (ingress rules classify *before* tagging).
    pub src_ip: Option<Ipv4Addr>,
    /// Most rules this VF may install across both pipelines.
    pub rule_quota: usize,
    /// Optional transmit shaper: `(rate, burst_bytes)`. Non-conforming
    /// transmissions are dropped and counted in `vf/<n>/shaper_drops`.
    pub tx_shaper: Option<(Bandwidth, u64)>,
}

impl VfConfig {
    /// An unshaped VF for `context` with a 16-rule quota.
    pub fn for_context(context: u32) -> VfConfig {
        VfConfig {
            context,
            src_ip: None,
            rule_quota: 16,
            tx_shaper: None,
        }
    }
}

/// One virtual function: its config, rule budget, shaper, and counters.
#[derive(Debug)]
struct VfSlot {
    cfg: VfConfig,
    rules_installed: usize,
    shaper: Option<TokenBucket>,
    unplugged: bool,
    rx_packets: Counter,
    rx_bytes: Counter,
    tx_packets: Counter,
    tx_bytes: Counter,
    shaper_drops: Counter,
    unplug_drops: Counter,
}

impl VfSlot {
    fn new(cfg: VfConfig) -> VfSlot {
        VfSlot {
            cfg,
            rules_installed: 0,
            shaper: cfg
                .tx_shaper
                .map(|(rate, burst)| TokenBucket::new(rate, burst)),
            unplugged: false,
            rx_packets: Counter::detached(),
            rx_bytes: Counter::detached(),
            tx_packets: Counter::detached(),
            tx_bytes: Counter::detached(),
            shaper_drops: Counter::detached(),
            unplug_drops: Counter::detached(),
        }
    }

    /// Re-resolves this slot's counters into `tree`, carrying over
    /// anything counted while detached.
    fn wire(&mut self, tree: &CounterTree, vf: usize) {
        for (leaf, ctr) in [
            ("rx_packets", &mut self.rx_packets),
            ("rx_bytes", &mut self.rx_bytes),
            ("tx_packets", &mut self.tx_packets),
            ("tx_bytes", &mut self.tx_bytes),
            ("shaper_drops", &mut self.shaper_drops),
            ("unplug_drops", &mut self.unplug_drops),
        ] {
            let wired = tree.counter(&format!("vf/{vf}/{leaf}"));
            wired.add(ctr.get());
            *ctr = wired;
        }
    }
}

/// The PF-side aggregates the per-VF counters telescope to, maintained
/// as plain integers on every accounting call (independent bookkeeping
/// the audit holds the counter tree to).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PfTotals {
    /// Packets received across all VFs.
    pub rx_packets: u64,
    /// Bytes received across all VFs.
    pub rx_bytes: u64,
    /// Packets transmitted (shaper-conforming) across all VFs.
    pub tx_packets: u64,
    /// Bytes transmitted across all VFs.
    pub tx_bytes: u64,
    /// Transmissions dropped by per-VF shapers.
    pub shaper_drops: u64,
    /// Packets offered to (or arriving for) an unplugged VF, dropped.
    pub unplug_drops: u64,
}

impl PfTotals {
    /// Sum of every aggregate — what the whole `vf/` subtree sums to.
    pub fn grand_total(&self) -> u64 {
        self.rx_packets
            + self.rx_bytes
            + self.tx_packets
            + self.tx_bytes
            + self.shaper_drops
            + self.unplug_drops
    }
}

/// The SR-IOV switchdev state of one NIC: the VF slots plus the PF
/// aggregates. Empty (`is_enabled() == false`) until the first
/// [`SrIov::create_vf`], and every data-path hook is a cheap no-op then,
/// so single-tenant systems pay nothing.
#[derive(Debug, Default)]
pub struct SrIov {
    vfs: Vec<VfSlot>,
    pf: PfTotals,
    tree: Option<CounterTree>,
}

/// Reasons a VF rule install is refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VfError {
    /// No such VF.
    UnknownVf(u16),
    /// The VF's rule quota is exhausted.
    QuotaExceeded(u16),
    /// The rule's match spec does not pin the VF's own traffic (its
    /// context tag or bound source address) — it could match another
    /// tenant's packets.
    Unscoped(u16),
}

impl std::fmt::Display for VfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VfError::UnknownVf(vf) => write!(f, "unknown vf {vf}"),
            VfError::QuotaExceeded(vf) => write!(f, "vf {vf} rule quota exceeded"),
            VfError::Unscoped(vf) => {
                write!(f, "rule for vf {vf} is not scoped to its own traffic")
            }
        }
    }
}

impl std::error::Error for VfError {}

impl SrIov {
    /// An SR-IOV state with no VFs (disabled).
    pub fn new() -> SrIov {
        SrIov::default()
    }

    /// Whether any VF exists.
    pub fn is_enabled(&self) -> bool {
        !self.vfs.is_empty()
    }

    /// Number of VFs.
    pub fn num_vfs(&self) -> usize {
        self.vfs.len()
    }

    /// Creates a VF; returns its id. Wired into the counter tree
    /// immediately when [`SrIov::wire_counters`] already ran.
    pub fn create_vf(&mut self, cfg: VfConfig) -> u16 {
        let vf = self.vfs.len();
        let mut slot = VfSlot::new(cfg);
        if let Some(tree) = &self.tree {
            slot.wire(tree, vf);
        }
        self.vfs.push(slot);
        vf as u16
    }

    /// Registers every VF's counters under `vf/<n>/...` of `tree`,
    /// carrying over pre-wiring counts. VFs created later wire
    /// themselves on creation.
    pub fn wire_counters(&mut self, tree: &CounterTree) {
        for (vf, slot) in self.vfs.iter_mut().enumerate() {
            slot.wire(tree, vf);
        }
        self.tree = Some(tree.clone());
    }

    /// The VF bound to tenant `context`, if any.
    pub fn vf_for_context(&self, context: u32) -> Option<u16> {
        self.vfs
            .iter()
            .position(|s| s.cfg.context == context)
            .map(|i| i as u16)
    }

    /// The context carried by `vf`.
    pub fn context_of(&self, vf: u16) -> Option<u32> {
        self.vfs.get(vf as usize).map(|s| s.cfg.context)
    }

    /// The source address bound to `vf`, if any.
    pub fn src_ip_of(&self, vf: u16) -> Option<Ipv4Addr> {
        self.vfs.get(vf as usize).and_then(|s| s.cfg.src_ip)
    }

    /// Whether `vf` is currently hot-unplugged.
    pub fn is_unplugged(&self, vf: u16) -> bool {
        self.vfs.get(vf as usize).is_some_and(|s| s.unplugged)
    }

    /// Hot-unplugs `vf`: its rule-quota booking is reclaimed (the caller
    /// removes the rules themselves from the pipelines), its shaper
    /// state is released, and until [`SrIov::replug`] every packet
    /// offered to or arriving for it is dropped and counted in
    /// `vf/<n>/unplug_drops`. Counters stay monotonic across the
    /// transition so the PF telescoping audit holds throughout.
    /// Returns the number of rule bookings reclaimed; `None` for an
    /// unknown VF.
    pub fn unplug(&mut self, vf: u16) -> Option<usize> {
        let slot = self.vfs.get_mut(vf as usize)?;
        slot.unplugged = true;
        let reclaimed = std::mem::take(&mut slot.rules_installed);
        slot.shaper = None;
        Some(reclaimed)
    }

    /// Replugs a previously unplugged `vf`: the shaper is rebuilt fresh
    /// from the VF's static config (full burst, empty history — the
    /// state was reclaimed at unplug). Rules must be reinstalled through
    /// [`SrIov::admit_rule`]; the quota starts empty. Returns `false`
    /// for an unknown VF.
    pub fn replug(&mut self, vf: u16) -> bool {
        let Some(slot) = self.vfs.get_mut(vf as usize) else {
            return false;
        };
        slot.unplugged = false;
        slot.shaper = slot
            .cfg
            .tx_shaper
            .map(|(rate, burst)| TokenBucket::new(rate, burst));
        true
    }

    /// Validates a rule install on behalf of `vf` and books it against
    /// the quota. The caller installs the rule into the pipeline only on
    /// `Ok`.
    pub fn admit_rule(&mut self, vf: u16, spec: &MatchSpec) -> Result<(), VfError> {
        let slot = self
            .vfs
            .get_mut(vf as usize)
            .ok_or(VfError::UnknownVf(vf))?;
        let scoped = spec.context_id == Some(slot.cfg.context)
            || (slot.cfg.src_ip.is_some() && spec.src_ip == slot.cfg.src_ip);
        if !scoped {
            return Err(VfError::Unscoped(vf));
        }
        if slot.rules_installed >= slot.cfg.rule_quota {
            return Err(VfError::QuotaExceeded(vf));
        }
        slot.rules_installed += 1;
        Ok(())
    }

    /// Rules `vf` has installed.
    pub fn rules_installed(&self, vf: u16) -> usize {
        self.vfs.get(vf as usize).map_or(0, |s| s.rules_installed)
    }

    /// Accounts one packet received by `vf`. Returns `false` when the VF
    /// is unplugged — the packet is dropped-and-counted
    /// (`vf/<n>/unplug_drops`) and the caller must not deliver it.
    /// No-op (`true`) for unknown VFs.
    pub fn account_rx(&mut self, vf: u16, bytes: u64) -> bool {
        if let Some(slot) = self.vfs.get_mut(vf as usize) {
            if slot.unplugged {
                slot.unplug_drops.inc();
                self.pf.unplug_drops += 1;
                return false;
            }
            slot.rx_packets.inc();
            slot.rx_bytes.add(bytes);
            self.pf.rx_packets += 1;
            self.pf.rx_bytes += bytes;
        }
        true
    }

    /// Offers one transmission of `bytes` on `vf` to its shaper.
    /// Conforming (or unshaped) transmissions are accounted and `true`
    /// returned; non-conforming ones are dropped and counted in
    /// `vf/<n>/shaper_drops`. Unknown VFs pass unaccounted.
    pub fn offer_tx(&mut self, vf: u16, now: SimTime, bytes: u64) -> bool {
        let Some(slot) = self.vfs.get_mut(vf as usize) else {
            return true;
        };
        if slot.unplugged {
            slot.unplug_drops.inc();
            self.pf.unplug_drops += 1;
            return false;
        }
        if let Some(tb) = &mut slot.shaper {
            if tb.earliest_send(now, bytes) > now {
                slot.shaper_drops.inc();
                self.pf.shaper_drops += 1;
                return false;
            }
            tb.consume(now, bytes);
        }
        slot.tx_packets.inc();
        slot.tx_bytes.add(bytes);
        self.pf.tx_packets += 1;
        self.pf.tx_bytes += bytes;
        true
    }

    /// The PF aggregates (independent of the counter tree).
    pub fn pf_totals(&self) -> PfTotals {
        self.pf
    }

    /// Token bytes available across all VF shapers at `now` (probe).
    pub fn shaper_tokens(&mut self, now: SimTime) -> f64 {
        self.vfs
            .iter_mut()
            .filter_map(|s| s.shaper.as_mut())
            .map(|tb| tb.level_bytes(now))
            .sum()
    }

    /// Burst capacity across all VF shapers (the token-pool bound).
    pub fn shaper_burst_bytes(&self) -> u64 {
        self.vfs
            .iter()
            .filter_map(|s| s.shaper.as_ref())
            .map(TokenBucket::burst_bytes)
            .sum()
    }

    /// [`SrIov::audit`] against the tree this state was wired into
    /// (no-op before wiring or with no VFs).
    pub fn audit_wired(&self, name: &str, at: SimTime, auditor: &mut fld_sim::audit::Auditor) {
        if let Some(tree) = self.tree.clone() {
            self.audit(name, at, &tree, auditor);
        }
    }

    /// Audits the per-VF → PF telescoping against `tree`: the whole
    /// `vf/` subtree sums to the PF grand total, and each per-kind leaf
    /// family sums to its PF aggregate.
    pub fn audit(
        &self,
        name: &str,
        at: SimTime,
        tree: &CounterTree,
        auditor: &mut fld_sim::audit::Auditor,
    ) {
        if !self.is_enabled() {
            return;
        }
        auditor.check_counter_sum(at, name, tree, "vf", self.pf.grand_total());
        for (leaf, agg) in [
            ("rx_packets", self.pf.rx_packets),
            ("rx_bytes", self.pf.rx_bytes),
            ("tx_packets", self.pf.tx_packets),
            ("tx_bytes", self.pf.tx_bytes),
            ("shaper_drops", self.pf.shaper_drops),
            ("unplug_drops", self.pf.unplug_drops),
        ] {
            let sum = tree.sum_leaf("vf", leaf);
            auditor.check(at, name, "counter-telescope", sum == agg, || {
                format!("vf/*/{leaf} sums to {sum} but the PF aggregate is {agg}")
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fld_sim::time::SimDuration;

    #[test]
    fn disabled_sriov_is_inert() {
        let mut s = SrIov::new();
        assert!(!s.is_enabled());
        assert!(s.offer_tx(0, SimTime::ZERO, 1500));
        s.account_rx(0, 1500);
        assert_eq!(s.pf_totals(), PfTotals::default());
    }

    #[test]
    fn rule_partition_enforced() {
        let mut s = SrIov::new();
        let vf = s.create_vf(VfConfig {
            context: 7,
            src_ip: Some(Ipv4Addr::new(10, 9, 0, 7)),
            rule_quota: 2,
            tx_shaper: None,
        });
        // Unscoped: could match anyone's traffic.
        assert_eq!(
            s.admit_rule(vf, &MatchSpec::any()),
            Err(VfError::Unscoped(vf))
        );
        // Wrong context: still another tenant's traffic.
        let wrong = MatchSpec {
            context_id: Some(8),
            ..MatchSpec::any()
        };
        assert_eq!(s.admit_rule(vf, &wrong), Err(VfError::Unscoped(vf)));
        // Scoped by context tag or by bound source address.
        let by_ctx = MatchSpec {
            context_id: Some(7),
            ..MatchSpec::any()
        };
        let by_ip = MatchSpec {
            src_ip: Some(Ipv4Addr::new(10, 9, 0, 7)),
            ..MatchSpec::any()
        };
        assert_eq!(s.admit_rule(vf, &by_ctx), Ok(()));
        assert_eq!(s.admit_rule(vf, &by_ip), Ok(()));
        // Quota of 2 is now spent.
        assert_eq!(s.admit_rule(vf, &by_ctx), Err(VfError::QuotaExceeded(vf)));
        assert_eq!(s.rules_installed(vf), 2);
        assert_eq!(s.admit_rule(99, &by_ctx), Err(VfError::UnknownVf(99)));
    }

    #[test]
    fn shaper_drops_and_accounts() {
        let mut s = SrIov::new();
        let vf = s.create_vf(VfConfig {
            context: 1,
            src_ip: None,
            rule_quota: 1,
            tx_shaper: Some((Bandwidth::gbps(1.0), 1500)),
        });
        assert!(s.offer_tx(vf, SimTime::ZERO, 1500));
        assert!(!s.offer_tx(vf, SimTime::ZERO, 1500), "bucket exhausted");
        // After 12 us at 1 Gbps the bucket refills 1500 B.
        let later = SimTime::ZERO + SimDuration::from_micros(12);
        assert!(s.offer_tx(vf, later, 1500));
        let pf = s.pf_totals();
        assert_eq!(pf.tx_packets, 2);
        assert_eq!(pf.tx_bytes, 3000);
        assert_eq!(pf.shaper_drops, 1);
    }

    #[test]
    fn unplug_reclaims_and_replug_restores() {
        let mut s = SrIov::new();
        let vf = s.create_vf(VfConfig {
            context: 3,
            src_ip: Some(Ipv4Addr::new(10, 9, 0, 3)),
            rule_quota: 2,
            tx_shaper: Some((Bandwidth::gbps(1.0), 1500)),
        });
        let by_ctx = MatchSpec {
            context_id: Some(3),
            ..MatchSpec::any()
        };
        assert_eq!(s.admit_rule(vf, &by_ctx), Ok(()));
        assert_eq!(s.admit_rule(vf, &by_ctx), Ok(()));
        assert!(s.offer_tx(vf, SimTime::ZERO, 1500));

        // Unplug: quota booking reclaimed, shaper state gone, traffic
        // in both directions dropped-and-counted.
        assert_eq!(s.unplug(vf), Some(2));
        assert!(s.is_unplugged(vf));
        assert_eq!(s.rules_installed(vf), 0);
        assert_eq!(s.shaper_burst_bytes(), 0);
        assert!(!s.offer_tx(vf, SimTime::ZERO, 1500));
        assert!(!s.account_rx(vf, 1500));
        assert_eq!(s.pf_totals().unplug_drops, 2);

        // Replug: fresh shaper at full burst, quota empty and bookable
        // again, traffic flows.
        assert!(s.replug(vf));
        assert!(!s.is_unplugged(vf));
        assert_eq!(s.shaper_burst_bytes(), 1500);
        assert_eq!(s.admit_rule(vf, &by_ctx), Ok(()));
        assert!(s.offer_tx(vf, SimTime::ZERO, 1500));
        assert!(s.account_rx(vf, 1500));

        // Counters stayed monotonic: the tree still telescopes.
        let tree = CounterTree::new();
        s.wire_counters(&tree);
        assert_eq!(tree.sum_prefix("vf"), s.pf_totals().grand_total());
        let mut auditor = fld_sim::audit::Auditor::new().strict();
        s.audit("sriov", SimTime::ZERO, &tree, &mut auditor);
        assert!(auditor.report().passed());
        assert_eq!(s.src_ip_of(vf), Some(Ipv4Addr::new(10, 9, 0, 3)));
        assert_eq!(s.unplug(99), None);
    }

    #[test]
    fn counters_telescope_and_carry_over() {
        let mut s = SrIov::new();
        let a = s.create_vf(VfConfig::for_context(1));
        // Count before wiring: the wire must carry the backlog over.
        s.account_rx(a, 100);
        let tree = CounterTree::new();
        s.wire_counters(&tree);
        assert_eq!(tree.get("vf/0/rx_packets"), Some(1));
        assert_eq!(tree.get("vf/0/rx_bytes"), Some(100));
        // A VF created after wiring lands in the tree immediately.
        let b = s.create_vf(VfConfig::for_context(2));
        s.account_rx(b, 50);
        assert!(s.offer_tx(b, SimTime::ZERO, 50));
        assert_eq!(tree.get("vf/1/rx_bytes"), Some(50));
        assert_eq!(tree.sum_leaf("vf", "rx_packets"), s.pf_totals().rx_packets);
        assert_eq!(tree.sum_prefix("vf"), s.pf_totals().grand_total());
        let mut auditor = fld_sim::audit::Auditor::new().strict();
        s.audit("sriov", SimTime::ZERO, &tree, &mut auditor);
        assert!(auditor.report().passed());
        assert_eq!(s.vf_for_context(2), Some(b));
        assert_eq!(s.context_of(a), Some(1));
    }
}
