//! The simulation's packet representation.
//!
//! Performance experiments move millions of packets; materializing byte
//! buffers for each would dominate runtime without adding fidelity. A
//! [`SimPacket`] therefore carries parsed metadata plus an *optional* byte
//! payload: functional paths (the real accelerators) attach bytes, while
//! load experiments run metadata-only.
//!
//! Layout matters here: perf sweeps keep hundreds of thousands of packets
//! alive inside the event calendar at once (an overloaded open-loop link
//! backs up), so every [`SimPacket`] byte multiplies into megabytes of
//! calendar working set. The byte payload is boxed (8 bytes for the
//! common `None` instead of an inline 32-byte `Bytes`) and the VNI uses a
//! `NonZeroU32` niche, keeping the whole packet in 56 bytes — an engine
//! event carrying one fits a single cache line.

use std::num::NonZeroU32;

use bytes::Bytes;

use fld_net::ethernet::ETHERNET_HEADER_LEN;
use fld_net::frame::{ParsedFrame, L4};
use fld_net::ipv4::IPV4_HEADER_LEN;
use fld_net::udp::UDP_HEADER_LEN;
use fld_net::FlowKey;
use fld_sim::time::SimTime;

/// Parsed header fields used by the eSwitch, RSS and virtualization logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PacketMeta {
    /// 5-tuple (ports zero when unavailable, e.g. fragments).
    pub flow: FlowKey,
    /// Whether the packet is an IPv4 fragment.
    pub is_fragment: bool,
    /// Whether it is the *first* fragment (offset 0, MF set).
    pub first_fragment: bool,
    /// VXLAN network id when tunnelled. Stored non-zero so the niche
    /// keeps the struct at 28 bytes; VNI 0 is reserved on real wires and
    /// parses as untunnelled.
    pub vni: Option<NonZeroU32>,
    /// Tenant/context id tagged by the eSwitch (0 = untagged) — the flow
    /// identification FLD forwards to the accelerator (§ 5.4).
    pub context_id: u32,
    /// Whether NIC checksum validation passed (false also when skipped).
    pub checksum_ok: bool,
}

impl PacketMeta {
    /// The VXLAN network id as a plain integer.
    pub fn vni_u32(&self) -> Option<u32> {
        self.vni.map(NonZeroU32::get)
    }
}

/// A packet travelling through the simulated system.
#[derive(Debug, Clone)]
pub struct SimPacket {
    /// Unique id for latency accounting.
    pub id: u64,
    /// Total frame length in bytes (Ethernet header through payload end).
    pub len: u32,
    /// Parsed metadata.
    pub meta: PacketMeta,
    /// Creation time (for end-to-end latency measurement).
    pub born: SimTime,
    /// Optional real bytes for functional processing. Boxed: the hot
    /// metadata-only path pays 8 bytes for the `None`, not an inline
    /// [`Bytes`] handle.
    pub bytes: Option<Box<Bytes>>,
}

impl SimPacket {
    /// Creates a metadata-only packet.
    pub fn synthetic(id: u64, len: u32, flow: FlowKey, born: SimTime) -> Self {
        SimPacket {
            id,
            len,
            meta: PacketMeta {
                flow,
                checksum_ok: true,
                ..PacketMeta::default()
            },
            born,
            bytes: None,
        }
    }

    /// Creates a packet from real frame bytes, parsing the metadata.
    ///
    /// Unparseable frames become metadata-less packets (zeroed flow key)
    /// rather than errors, mirroring how a NIC forwards unknown traffic.
    pub fn from_frame(id: u64, frame: Bytes, born: SimTime) -> Self {
        let meta = match ParsedFrame::parse(&frame) {
            Ok(parsed) => {
                let flow = parsed.flow_key().unwrap_or_default();
                let (is_fragment, first_fragment) = parsed
                    .ip
                    .map(|ip| (ip.is_fragment(), ip.is_fragment() && ip.frag_offset == 0))
                    .unwrap_or((false, false));
                let vni = match (&parsed.l4, parsed.ip) {
                    (L4::Udp(u), Some(_)) if u.dst_port == fld_net::vxlan::VXLAN_UDP_PORT => {
                        fld_net::frame::vxlan_decap(&frame)
                            .ok()
                            .and_then(|(vni, _)| NonZeroU32::new(vni))
                    }
                    _ => None,
                };
                PacketMeta {
                    flow,
                    is_fragment,
                    first_fragment,
                    vni,
                    context_id: 0,
                    checksum_ok: true,
                }
            }
            Err(_) => PacketMeta::default(),
        };
        SimPacket {
            id,
            len: frame.len() as u32,
            meta,
            born,
            bytes: Some(Box::new(frame)),
        }
    }

    /// Borrows the functional byte payload, when attached.
    pub fn payload_bytes(&self) -> Option<&Bytes> {
        self.bytes.as_deref()
    }

    /// Length of a UDP frame carrying `payload` bytes (convenience for
    /// generators).
    pub const fn udp_len(payload: u32) -> u32 {
        (ETHERNET_HEADER_LEN + IPV4_HEADER_LEN + UDP_HEADER_LEN) as u32 + payload
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fld_net::frame::{build_udp_frame, fragment_frame, vxlan_encap, Endpoints};

    #[test]
    fn synthetic_packet() {
        let p = SimPacket::synthetic(1, 64, FlowKey::default(), SimTime::ZERO);
        assert_eq!(p.len, 64);
        assert!(p.bytes.is_none());
        assert!(p.meta.checksum_ok);
    }

    #[test]
    fn parses_udp_frame() {
        let ep = Endpoints::sim(1, 2);
        let frame = build_udp_frame(&ep, 1000, 2000, &[0u8; 100]);
        let p = SimPacket::from_frame(9, frame.clone(), SimTime::ZERO);
        assert_eq!(p.len as usize, frame.len());
        assert_eq!(p.meta.flow.dst_port, 2000);
        assert!(!p.meta.is_fragment);
        assert!(p.meta.vni.is_none());
    }

    #[test]
    fn detects_fragments() {
        let ep = Endpoints::sim(1, 2);
        let frame = build_udp_frame(&ep, 1, 2, &[0u8; 3000]);
        let frags = fragment_frame(&frame, 1500, 5).unwrap();
        let first = SimPacket::from_frame(0, frags[0].clone(), SimTime::ZERO);
        assert!(first.meta.is_fragment);
        assert!(first.meta.first_fragment);
        let second = SimPacket::from_frame(1, frags[1].clone(), SimTime::ZERO);
        assert!(second.meta.is_fragment);
        assert!(!second.meta.first_fragment);
    }

    #[test]
    fn detects_vxlan() {
        let ep = Endpoints::sim(1, 2);
        let inner = build_udp_frame(&Endpoints::sim(3, 4), 5, 6, b"x");
        let tunneled = vxlan_encap(&ep, 77, &inner, 4444);
        let p = SimPacket::from_frame(0, tunneled, SimTime::ZERO);
        assert_eq!(p.meta.vni_u32(), Some(77));
    }

    #[test]
    fn packet_fits_one_cache_line() {
        // The calendar keeps ~10^5 of these alive under overload; a
        // packet-carrying engine event must stay within 64 bytes.
        assert!(std::mem::size_of::<SimPacket>() <= 56);
        assert!(std::mem::size_of::<PacketMeta>() <= 28);
    }

    #[test]
    fn udp_len_helper() {
        assert_eq!(SimPacket::udp_len(0), 42);
        assert_eq!(SimPacket::udp_len(1458), 1500);
    }
}
