//! The NIC device model: vPorts, classification pipelines, RSS contexts,
//! policers and RDMA queue pairs under one roof, plus the control-plane
//! command interface the FLD runtime drives (paper Figure 5: the runtime
//! library and kernel driver configure the NIC on behalf of the
//! accelerator).

use std::collections::HashMap;

use fld_sim::counters::{Counter, CounterTree};
use fld_sim::time::{Bandwidth, SimTime};

use crate::eswitch::{Pipeline, Rule, SideEffects, Verdict};
use crate::packet::PacketMeta;
use crate::rdma::{QpConfig, RcQp};
use crate::rss::RssContext;
use crate::shaper::{PolicerSet, PolicerVerdict};
use crate::vf::{SrIov, VfConfig, VfError};

/// Which classification pipeline a rule targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Packets arriving from the wire.
    Ingress,
    /// Packets submitted by the host or the accelerator.
    Egress,
}

/// Errors returned by the NIC command interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NicError {
    /// Referenced QP does not exist.
    UnknownQp(u32),
    /// Referenced RSS context does not exist.
    UnknownRss(u16),
    /// Referenced table does not exist.
    UnknownTable(u16),
    /// A VF rule install was refused by the SR-IOV partition.
    Vf(VfError),
}

impl std::fmt::Display for NicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NicError::UnknownQp(qpn) => write!(f, "unknown qp {qpn}"),
            NicError::UnknownRss(id) => write!(f, "unknown rss context {id}"),
            NicError::UnknownTable(t) => write!(f, "unknown table {t}"),
            NicError::Vf(e) => write!(f, "{e}"),
        }
    }
}

impl From<VfError> for NicError {
    fn from(e: VfError) -> NicError {
        NicError::Vf(e)
    }
}

impl std::error::Error for NicError {}

/// Static NIC configuration.
#[derive(Debug, Clone, Copy)]
pub struct NicConfig {
    /// Number of match-action tables per pipeline.
    pub tables: usize,
    /// Ethernet port line rate (25 Gbps on the Innova-2).
    pub line_rate: Bandwidth,
}

impl Default for NicConfig {
    fn default() -> Self {
        NicConfig {
            tables: 4,
            line_rate: Bandwidth::gbps(25.0),
        }
    }
}

/// The NIC device.
#[derive(Debug)]
pub struct Nic {
    config: NicConfig,
    ingress: Pipeline,
    egress: Pipeline,
    rss_contexts: Vec<RssContext>,
    policers: PolicerSet,
    qps: HashMap<u32, RcQp>,
    next_qpn: u32,
    /// Packets dropped by policers.
    policer_drops: u64,
    /// Packets dropped by classification.
    classifier_drops: u64,
    /// Packets matched (any verdict but `Drop`) by classification.
    classifier_matches: u64,
    /// eSwitch counter-tree handles (`eswitch/port/<p>/...`), detached
    /// until [`Nic::wire_counters`].
    ctr_match: Counter,
    ctr_miss: Counter,
    ctr_policer_drop: Counter,
    /// SR-IOV virtual functions (empty ⇒ disabled, every hook a no-op).
    sriov: SrIov,
}

impl Nic {
    /// Creates a NIC with empty pipelines.
    pub fn new(config: NicConfig) -> Self {
        Nic {
            config,
            ingress: Pipeline::new(config.tables),
            egress: Pipeline::new(config.tables),
            rss_contexts: Vec::new(),
            policers: PolicerSet::new(),
            qps: HashMap::new(),
            next_qpn: 0x100,
            policer_drops: 0,
            classifier_drops: 0,
            classifier_matches: 0,
            ctr_match: Counter::detached(),
            ctr_miss: Counter::detached(),
            ctr_policer_drop: Counter::detached(),
            sriov: SrIov::new(),
        }
    }

    /// Registers this NIC's eSwitch counters as port `port` of `tree`
    /// (`eswitch/port/<p>/match|miss|policer_drop`), carrying over
    /// anything counted before wiring. The counter values mirror
    /// [`Nic::classifier_matches`], [`Nic::classifier_drops`] and
    /// [`Nic::policer_drops`] exactly — the telescoping audit holds the
    /// two bookkeeping systems to that.
    pub fn wire_counters(&mut self, tree: &CounterTree, port: usize) {
        self.ctr_match = tree.counter(&format!("eswitch/port/{port}/match"));
        self.ctr_match.add(self.classifier_matches);
        self.ctr_miss = tree.counter(&format!("eswitch/port/{port}/miss"));
        self.ctr_miss.add(self.classifier_drops);
        self.ctr_policer_drop = tree.counter(&format!("eswitch/port/{port}/policer_drop"));
        self.ctr_policer_drop.add(self.policer_drops);
        self.sriov.wire_counters(tree);
    }

    /// The configured line rate.
    pub fn line_rate(&self) -> Bandwidth {
        self.config.line_rate
    }

    // ---- control plane (driven by the FLD runtime / kernel driver) ----

    /// Installs a match-action rule.
    ///
    /// # Errors
    ///
    /// Fails if the table does not exist.
    pub fn install_rule(
        &mut self,
        direction: Direction,
        table: u16,
        rule: Rule,
    ) -> Result<(), NicError> {
        if table as usize >= self.config.tables {
            return Err(NicError::UnknownTable(table));
        }
        match direction {
            Direction::Ingress => self.ingress.install(table, rule),
            Direction::Egress => self.egress.install(table, rule),
        }
        Ok(())
    }

    /// Creates an SR-IOV virtual function; returns its id.
    pub fn create_vf(&mut self, cfg: VfConfig) -> u16 {
        self.sriov.create_vf(cfg)
    }

    /// Installs a match-action rule on behalf of a VF, enforcing the
    /// SR-IOV partition: the rule must pin the VF's own traffic (its
    /// context tag or bound source address) and fit its quota.
    ///
    /// # Errors
    ///
    /// Fails if the table does not exist, the VF does not exist, the
    /// rule is not scoped to the VF, or the quota is spent.
    pub fn install_vf_rule(
        &mut self,
        vf: u16,
        direction: Direction,
        table: u16,
        rule: Rule,
    ) -> Result<(), NicError> {
        if table as usize >= self.config.tables {
            return Err(NicError::UnknownTable(table));
        }
        self.sriov.admit_rule(vf, &rule.spec)?;
        self.install_rule(direction, table, rule)
    }

    /// Hot-unplugs a VF: every steering rule pinning the VF's context
    /// tag or bound source address is evicted from both pipelines (the
    /// TCAM space goes back to the shared pool), the quota booking and
    /// shaper state are reclaimed, and until [`Nic::replug_vf`] the VF's
    /// traffic is dropped-and-counted in `vf/<n>/unplug_drops`. Returns
    /// the number of pipeline rules evicted; `None` for an unknown VF.
    pub fn unplug_vf(&mut self, vf: u16) -> Option<usize> {
        let ctx = self.sriov.context_of(vf)?;
        let ip = self.sriov.src_ip_of(vf);
        let owns =
            move |r: &Rule| r.spec.context_id == Some(ctx) || (ip.is_some() && r.spec.src_ip == ip);
        let removed = self.ingress.remove_where(owns) + self.egress.remove_where(owns);
        self.sriov.unplug(vf);
        Some(removed)
    }

    /// Replugs a previously unplugged VF (fresh shaper, empty quota).
    /// The caller reinstalls the VF's rules through
    /// [`Nic::install_vf_rule`]. Returns `false` for an unknown VF.
    pub fn replug_vf(&mut self, vf: u16) -> bool {
        self.sriov.replug(vf)
    }

    /// The SR-IOV state (VF lookup, PF totals, telescoping audit).
    pub fn sriov(&self) -> &SrIov {
        &self.sriov
    }

    /// Mutable SR-IOV state (data-path accounting, shaper offers).
    pub fn sriov_mut(&mut self) -> &mut SrIov {
        &mut self.sriov
    }

    /// Creates an RSS context spreading over `queues` queues; returns its id.
    pub fn create_rss(&mut self, queues: u16) -> u16 {
        self.rss_contexts.push(RssContext::new(queues));
        (self.rss_contexts.len() - 1) as u16
    }

    /// Creates a queue pair; returns its number.
    pub fn create_qp(&mut self, config: QpConfig) -> u32 {
        let qpn = self.next_qpn;
        self.next_qpn += 1;
        self.qps.insert(qpn, RcQp::new(qpn, config));
        qpn
    }

    /// Connects a local QP to a peer QP number.
    ///
    /// # Errors
    ///
    /// Fails if the QP does not exist.
    pub fn connect_qp(&mut self, qpn: u32, peer: u32) -> Result<(), NicError> {
        self.qps
            .get_mut(&qpn)
            .ok_or(NicError::UnknownQp(qpn))
            .map(|qp| qp.connect(peer))
    }

    /// Mutable access to a QP (data-path polling).
    pub fn qp_mut(&mut self, qpn: u32) -> Option<&mut RcQp> {
        self.qps.get_mut(&qpn)
    }

    /// Shared access to a QP.
    pub fn qp(&self, qpn: u32) -> Option<&RcQp> {
        self.qps.get(&qpn)
    }

    /// Installs a maximum-bandwidth policer for a tenant context.
    pub fn install_policer(&mut self, context: u32, rate: Bandwidth, burst_bytes: u64) {
        self.policers.install(context, rate, burst_bytes);
    }

    // ---- data plane ----

    /// Classifies a packet arriving from the wire.
    pub fn classify_ingress(&mut self, meta: &mut PacketMeta) -> (Verdict, SideEffects) {
        let (verdict, fx) = self.ingress.classify(meta, 0);
        self.count_verdict(verdict);
        (verdict, fx)
    }

    /// Resumes classification for a packet returning from the accelerator
    /// at `next_table` (the FLD-E "resume where the acceleration action
    /// took off" semantics, § 5.3).
    pub fn classify_resumed(
        &mut self,
        meta: &mut PacketMeta,
        next_table: u16,
    ) -> (Verdict, SideEffects) {
        let (verdict, fx) = self.ingress.classify(meta, next_table);
        self.count_verdict(verdict);
        (verdict, fx)
    }

    /// Classifies a packet submitted for transmission by the host or FLD.
    pub fn classify_egress(&mut self, meta: &mut PacketMeta) -> (Verdict, SideEffects) {
        let (verdict, fx) = self.egress.classify(meta, 0);
        self.count_verdict(verdict);
        (verdict, fx)
    }

    /// Books one classification outcome on both sides: the aggregate
    /// fields and the eSwitch per-port counters (mlx5 counts the same
    /// event as a flow-table hit/miss).
    fn count_verdict(&mut self, verdict: Verdict) {
        if verdict == Verdict::Drop {
            self.classifier_drops += 1;
            self.ctr_miss.inc();
        } else {
            self.classifier_matches += 1;
            self.ctr_match.inc();
        }
    }

    /// Picks the receive queue for a packet via an RSS context.
    ///
    /// # Errors
    ///
    /// Fails if the context does not exist.
    pub fn rss_queue(&self, rss_id: u16, meta: &PacketMeta) -> Result<u16, NicError> {
        self.rss_contexts
            .get(rss_id as usize)
            .map(|r| r.queue_for(meta))
            .ok_or(NicError::UnknownRss(rss_id))
    }

    /// Applies the per-context policer; returns `false` when the packet
    /// must be dropped.
    pub fn police(&mut self, context: u32, now: SimTime, bytes: u64) -> bool {
        match self.policers.offer(context, now, bytes) {
            PolicerVerdict::Exceed => {
                self.policer_drops += 1;
                self.ctr_policer_drop.inc();
                false
            }
            _ => true,
        }
    }

    /// Packets dropped by policers so far.
    pub fn policer_drops(&self) -> u64 {
        self.policer_drops
    }

    /// Total shaper tokens in bytes across all installed policers at
    /// `now` (flight-recorder probe; 0 with no policers installed).
    pub fn shaper_tokens(&mut self, now: SimTime) -> f64 {
        self.policers.total_tokens(now)
    }

    /// Total shaper burst capacity in bytes across all installed
    /// policers (the bound audited against [`Nic::shaper_tokens`]).
    pub fn shaper_burst_bytes(&self) -> u64 {
        self.policers.total_burst_bytes()
    }

    /// Packets dropped by classification so far.
    pub fn classifier_drops(&self) -> u64 {
        self.classifier_drops
    }

    /// Packets classified to a non-drop verdict so far.
    pub fn classifier_matches(&self) -> u64 {
        self.classifier_matches
    }

    /// Registers the NIC's telemetry under `prefix` (e.g.
    /// `"{prefix}.eswitch.drops"`, `"{prefix}.rdma.retransmits"`).
    pub fn export_metrics(&self, prefix: &str, registry: &mut fld_sim::metrics::MetricsRegistry) {
        registry.counter(format!("{prefix}.eswitch.drops"), self.classifier_drops);
        registry.counter(format!("{prefix}.eswitch.matches"), self.classifier_matches);
        registry.counter(format!("{prefix}.policer.drops"), self.policer_drops);
        registry.counter(
            format!("{prefix}.rss_contexts"),
            self.rss_contexts.len() as u64,
        );
        registry.counter(format!("{prefix}.qps"), self.qps.len() as u64);
        let retransmits: u64 = self.qps.values().map(|qp| qp.retransmits()).sum();
        registry.counter(format!("{prefix}.rdma.retransmits"), retransmits);
    }
}

impl fld_sim::engine::Component for Nic {
    /// One probe: the aggregate shaper token level
    /// (`"{name}.shaper.tokens"`).
    fn probes(
        &mut self,
        name: &str,
        now: SimTime,
        _interval: fld_sim::time::SimDuration,
        out: &mut fld_sim::engine::Probes,
    ) {
        out.push_scoped(name, "shaper.tokens", self.shaper_tokens(now));
    }

    /// Shaper token level bounded by the aggregate burst pool, plus the
    /// per-VF → PF counter telescoping when SR-IOV is enabled.
    fn audit(&mut self, name: &str, at: SimTime, auditor: &mut fld_sim::audit::Auditor) {
        let tokens = self.shaper_tokens(at);
        let burst = self.shaper_burst_bytes() as f64;
        auditor.check(
            at,
            &format!("{name}.shaper"),
            "credits",
            (0.0..=burst + 1e-6).contains(&tokens),
            || format!("token level {tokens} outside pool 0..={burst}"),
        );
        if self.sriov.is_enabled() {
            let vf_tokens = self.sriov.shaper_tokens(at);
            let vf_burst = self.sriov.shaper_burst_bytes() as f64;
            auditor.check(
                at,
                &format!("{name}.vf.shaper"),
                "credits",
                (0.0..=vf_burst + 1e-6).contains(&vf_tokens),
                || format!("vf token level {vf_tokens} outside pool 0..={vf_burst}"),
            );
            self.sriov
                .audit_wired(&format!("{name}.sriov"), at, auditor);
        }
    }

    fn export_metrics(
        &self,
        name: &str,
        _end: SimTime,
        registry: &mut fld_sim::metrics::MetricsRegistry,
    ) {
        Nic::export_metrics(self, name, registry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eswitch::{Action, MatchSpec};
    use fld_net::{FlowKey, Ipv4Addr};

    fn meta() -> PacketMeta {
        PacketMeta {
            flow: FlowKey::new(
                Ipv4Addr::new(1, 1, 1, 1),
                Ipv4Addr::new(2, 2, 2, 2),
                1111,
                2222,
                17,
            ),
            checksum_ok: true,
            ..PacketMeta::default()
        }
    }

    #[test]
    fn rule_installation_and_classification() {
        let mut nic = Nic::new(NicConfig::default());
        nic.install_rule(
            Direction::Ingress,
            0,
            Rule {
                priority: 0,
                spec: MatchSpec::any(),
                actions: vec![Action::ToHostRss { rss_id: 0 }],
            },
        )
        .unwrap();
        let rss = nic.create_rss(8);
        assert_eq!(rss, 0);
        let mut m = meta();
        let (verdict, _) = nic.classify_ingress(&mut m);
        assert_eq!(verdict, Verdict::HostRss { rss_id: 0 });
        let q = nic.rss_queue(0, &m).unwrap();
        assert!(q < 8);
    }

    #[test]
    fn unknown_table_rejected() {
        let mut nic = Nic::new(NicConfig::default());
        let err = nic
            .install_rule(
                Direction::Egress,
                99,
                Rule {
                    priority: 0,
                    spec: MatchSpec::any(),
                    actions: vec![Action::Drop],
                },
            )
            .unwrap_err();
        assert_eq!(err, NicError::UnknownTable(99));
    }

    #[test]
    fn qp_lifecycle() {
        let mut nic = Nic::new(NicConfig::default());
        let a = nic.create_qp(QpConfig::default());
        let b = nic.create_qp(QpConfig::default());
        assert_ne!(a, b);
        nic.connect_qp(a, b).unwrap();
        nic.connect_qp(b, a).unwrap();
        assert!(nic.qp(a).is_some());
        assert_eq!(nic.connect_qp(9999, a), Err(NicError::UnknownQp(9999)));
        nic.qp_mut(a).unwrap().post_send(1, 100);
        let pkts = nic.qp_mut(a).unwrap().poll_transmit(SimTime::ZERO);
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].dest_qp, b);
    }

    #[test]
    fn policer_integration() {
        let mut nic = Nic::new(NicConfig::default());
        nic.install_policer(3, Bandwidth::gbps(1.0), 1500);
        assert!(nic.police(3, SimTime::ZERO, 1500));
        assert!(!nic.police(3, SimTime::ZERO, 1500));
        assert_eq!(nic.policer_drops(), 1);
        // Unpoliced context always passes.
        assert!(nic.police(99, SimTime::ZERO, 1500));
    }

    #[test]
    fn drops_counted() {
        let mut nic = Nic::new(NicConfig::default());
        let mut m = meta();
        // Empty pipeline: miss -> drop.
        let (v, _) = nic.classify_ingress(&mut m);
        assert_eq!(v, Verdict::Drop);
        assert_eq!(nic.classifier_drops(), 1);
    }

    #[test]
    fn eswitch_counters_mirror_the_aggregates() {
        let tree = CounterTree::new();
        let mut nic = Nic::new(NicConfig::default());
        // Count before wiring: the wire must carry the backlog over.
        let mut m = meta();
        let (v, _) = nic.classify_ingress(&mut m);
        assert_eq!(v, Verdict::Drop);
        nic.wire_counters(&tree, 0);
        assert_eq!(tree.get("eswitch/port/0/miss"), Some(1));
        nic.install_rule(
            Direction::Ingress,
            0,
            Rule {
                priority: 0,
                spec: MatchSpec::any(),
                actions: vec![Action::ToHostRss { rss_id: 0 }],
            },
        )
        .unwrap();
        let (v, _) = nic.classify_ingress(&mut meta());
        assert_ne!(v, Verdict::Drop);
        nic.install_policer(3, Bandwidth::gbps(1.0), 1500);
        assert!(nic.police(3, SimTime::ZERO, 1500));
        assert!(!nic.police(3, SimTime::ZERO, 1500));
        assert_eq!(
            tree.get("eswitch/port/0/match"),
            Some(nic.classifier_matches())
        );
        assert_eq!(
            tree.get("eswitch/port/0/miss"),
            Some(nic.classifier_drops())
        );
        assert_eq!(
            tree.get("eswitch/port/0/policer_drop"),
            Some(nic.policer_drops())
        );
    }

    #[test]
    fn resume_at_next_table() {
        let mut nic = Nic::new(NicConfig::default());
        nic.install_rule(
            Direction::Ingress,
            2,
            Rule {
                priority: 0,
                spec: MatchSpec::any(),
                actions: vec![Action::ToHostRss { rss_id: 0 }],
            },
        )
        .unwrap();
        let mut m = meta();
        let (v, _) = nic.classify_resumed(&mut m, 2);
        assert_eq!(v, Verdict::HostRss { rss_id: 0 });
    }
}
