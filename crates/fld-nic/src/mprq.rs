//! Multi-packet receive queues (MPRQ), the ConnectX-5 mechanism FLD uses
//! to bound receive-buffer fragmentation (paper § 5.2): *"multi-packet
//! receive queues, receiving multiple packets in each buffer. MPRQs may
//! still suffer from fragmentation but only up to half of the buffer
//! size."*
//!
//! An MPRQ divides each receive buffer into fixed-size *strides*; an
//! incoming packet consumes a contiguous run of strides within one buffer,
//! and the buffer recycles when every packet in it has been released.

/// Location of a received packet inside the MPRQ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MprqPlacement {
    /// Which buffer the packet landed in.
    pub buffer: u16,
    /// First stride within the buffer.
    pub first_stride: u16,
    /// Number of strides consumed.
    pub strides: u16,
}

#[derive(Debug, Clone)]
struct MprqBuffer {
    /// Next free stride index (strides are allocated bump-pointer style —
    /// this is what the hardware does; holes are reclaimed only at buffer
    /// recycle).
    next_stride: u16,
    /// Packets placed and not yet released.
    live_packets: u16,
    /// Whether the buffer has been retired (full) and awaits drain.
    retired: bool,
}

/// A multi-packet receive queue.
///
/// # Examples
///
/// ```
/// use fld_nic::mprq::Mprq;
///
/// // Two 4 KiB buffers of 256 B strides.
/// let mut q = Mprq::new(2, 4096, 256);
/// let p = q.place(1000).expect("room available");
/// assert_eq!(p.strides, 4); // 1000 B rounds to 4 strides
/// q.release(p);
/// ```
#[derive(Debug)]
pub struct Mprq {
    stride_bytes: u32,
    strides_per_buffer: u16,
    buffers: Vec<MprqBuffer>,
    /// Buffer currently being filled.
    current: usize,
    received: u64,
    dropped: u64,
    recycled: u64,
}

impl Mprq {
    /// Creates an MPRQ with `buffers` buffers of `buffer_bytes` each,
    /// divided into `stride_bytes` strides.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or the stride does not divide the
    /// buffer.
    pub fn new(buffers: usize, buffer_bytes: u32, stride_bytes: u32) -> Self {
        assert!(buffers > 0 && buffer_bytes > 0 && stride_bytes > 0);
        assert_eq!(buffer_bytes % stride_bytes, 0, "stride must divide buffer");
        let strides_per_buffer = (buffer_bytes / stride_bytes) as u16;
        Mprq {
            stride_bytes,
            strides_per_buffer,
            buffers: vec![
                MprqBuffer {
                    next_stride: 0,
                    live_packets: 0,
                    retired: false
                };
                buffers
            ],
            current: 0,
            received: 0,
            dropped: 0,
            recycled: 0,
        }
    }

    /// Strides a packet of `len` bytes consumes.
    pub fn strides_for(&self, len: u32) -> u16 {
        (len.div_ceil(self.stride_bytes) as u16).max(1)
    }

    /// Bytes wasted by stride rounding for a packet of `len` bytes — the
    /// bounded internal fragmentation of § 5.2.
    pub fn fragmentation_for(&self, len: u32) -> u32 {
        self.strides_for(len) as u32 * self.stride_bytes - len
    }

    /// Packets successfully placed.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Packets dropped because no buffer had room.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Buffers recycled so far.
    pub fn recycled(&self) -> u64 {
        self.recycled
    }

    fn advance_current(&mut self) -> bool {
        // Find any non-retired buffer with a clean slate.
        for i in 0..self.buffers.len() {
            let idx = (self.current + i) % self.buffers.len();
            let b = &self.buffers[idx];
            if !b.retired && b.next_stride < self.strides_per_buffer {
                self.current = idx;
                return true;
            }
        }
        false
    }

    /// Places a packet of `len` bytes; `None` means the NIC must drop it
    /// (all buffers exhausted and not yet drained).
    pub fn place(&mut self, len: u32) -> Option<MprqPlacement> {
        let need = self.strides_for(len);
        if need > self.strides_per_buffer {
            self.dropped += 1;
            return None;
        }
        // Retire the current buffer if the packet does not fit (packets
        // never straddle buffers). A retired buffer whose packets have all
        // been released already recycles on the spot — without this, a
        // consumer that drains faster than the fill rate would leak every
        // buffer (they would retire at live_packets == 0 and no later
        // release could ever recycle them).
        let fits = {
            let b = &mut self.buffers[self.current];
            if !b.retired && b.next_stride + need > self.strides_per_buffer && b.next_stride > 0 {
                b.retired = true;
                if b.live_packets == 0 {
                    b.retired = false;
                    b.next_stride = 0;
                    self.recycled += 1;
                }
            }
            !b.retired && b.next_stride + need <= self.strides_per_buffer
        };
        if !fits {
            if !self.advance_current() {
                self.dropped += 1;
                return None;
            }
            // The advanced-to buffer must fit (it is clean or partially
            // filled with enough room — re-check).
            let b = &self.buffers[self.current];
            if b.next_stride + need > self.strides_per_buffer {
                self.dropped += 1;
                return None;
            }
        }
        let buffer = self.current as u16;
        let b = &mut self.buffers[self.current];
        let first_stride = b.next_stride;
        b.next_stride += need;
        b.live_packets += 1;
        if b.next_stride == self.strides_per_buffer {
            b.retired = true;
        }
        self.received += 1;
        Some(MprqPlacement {
            buffer,
            first_stride,
            strides: need,
        })
    }

    /// Releases a previously placed packet; a fully drained retired buffer
    /// recycles for reuse.
    ///
    /// # Panics
    ///
    /// Panics on release into an empty buffer (double release).
    pub fn release(&mut self, placement: MprqPlacement) {
        let b = &mut self.buffers[placement.buffer as usize];
        assert!(
            b.live_packets > 0,
            "double release into buffer {}",
            placement.buffer
        );
        b.live_packets -= 1;
        if b.live_packets == 0 && b.retired {
            b.retired = false;
            b.next_stride = 0;
            self.recycled += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> Mprq {
        Mprq::new(2, 4096, 256)
    }

    #[test]
    fn packs_multiple_packets_per_buffer() {
        let mut q = q();
        let a = q.place(256).unwrap();
        let b = q.place(256).unwrap();
        assert_eq!(a.buffer, b.buffer);
        assert_eq!(a.first_stride, 0);
        assert_eq!(b.first_stride, 1);
    }

    #[test]
    fn stride_rounding() {
        let q = q();
        assert_eq!(q.strides_for(1), 1);
        assert_eq!(q.strides_for(256), 1);
        assert_eq!(q.strides_for(257), 2);
        assert_eq!(q.strides_for(1500), 6);
        assert_eq!(q.fragmentation_for(1500), 36);
        assert_eq!(q.fragmentation_for(256), 0);
    }

    #[test]
    fn fragmentation_is_bounded_by_one_stride() {
        let q = q();
        for len in 1..=4096u32 {
            assert!(q.fragmentation_for(len) < 256, "len {len}");
        }
    }

    #[test]
    fn buffer_boundary_retires_and_moves_on() {
        let mut q = Mprq::new(2, 1024, 256); // 4 strides per buffer
        let a = q.place(768).unwrap(); // 3 strides
        let b = q.place(512).unwrap(); // 2 strides: does not fit -> buffer 1
        assert_eq!(a.buffer, 0);
        assert_eq!(b.buffer, 1);
        assert_eq!(b.first_stride, 0);
    }

    #[test]
    fn exhaustion_drops_then_recycle_recovers() {
        let mut q = Mprq::new(2, 1024, 256);
        let a = q.place(1024).unwrap();
        let b = q.place(1024).unwrap();
        assert!(q.place(256).is_none(), "both buffers full");
        assert_eq!(q.dropped(), 1);
        q.release(a);
        assert_eq!(q.recycled(), 1);
        let c = q.place(256).expect("recycled buffer usable");
        assert_eq!(c.buffer, a.buffer);
        q.release(b);
        q.release(c);
        assert_eq!(q.recycled(), 2);
    }

    #[test]
    fn oversized_packet_dropped() {
        let mut q = Mprq::new(2, 1024, 256);
        assert!(q.place(2048).is_none());
        assert_eq!(q.dropped(), 1);
    }

    #[test]
    fn sustained_churn_recycles_forever() {
        let mut q = Mprq::new(4, 4096, 256);
        let mut live = std::collections::VecDeque::new();
        for i in 0..10_000u32 {
            let len = 64 + (i * 37) % 1500;
            match q.place(len) {
                Some(p) => live.push_back(p),
                None => {
                    // Drain half and retry once.
                    for _ in 0..live.len() / 2 {
                        q.release(live.pop_front().unwrap());
                    }
                    let p = q.place(len).expect("room after drain");
                    live.push_back(p);
                }
            }
            // Keep roughly 8 packets in flight.
            while live.len() > 8 {
                q.release(live.pop_front().unwrap());
            }
        }
        assert!(q.received() == 10_000);
        assert!(q.recycled() > 100);
    }

    #[test]
    fn immediate_release_never_exhausts() {
        // Regression: a consumer draining each packet before the next
        // arrives must be sustainable forever (found by the Criterion
        // bench, which does exactly this).
        let mut q = Mprq::new(8, 32 * 1024, 256);
        for _ in 0..100_000 {
            let p = q.place(1500).expect("immediate-release must never exhaust");
            q.release(p);
        }
        assert_eq!(q.dropped(), 0);
        assert!(q.recycled() > 1000);
    }

    #[test]
    #[should_panic]
    fn double_release_panics() {
        let mut q = q();
        let p = q.place(100).unwrap();
        q.release(p);
        q.release(p);
    }
}
