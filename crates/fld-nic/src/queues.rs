//! The conventional software-driver queue structures of § 2.2: *"Driver
//! data-plane tasks commonly use host memory to exchange buffers and
//! completions with the NIC over producer-consumer ring data structures."*
//!
//! These are the structures whose memory footprint Table 3's "Software"
//! column prices (64 B WQEs × `f(N)` × `N_q` rings, shared 16 B-entry
//! receive ring, 64 B CQEs) — implemented as real rings so the comparison
//! against FLD's compressed forms is grounded in working code, and so the
//! host-side models have a faithful substrate.

use std::collections::VecDeque;

use fld_sim::time::{SimDuration, SimTime};

use crate::wqe::{Cqe, TxDescriptor, SW_CQE_SIZE, SW_RX_DESC_SIZE, SW_TX_DESC_SIZE};

/// A conventional per-queue transmit ring (power-of-two sized, § 4.3's
/// `f(n)` rounding).
#[derive(Debug)]
pub struct SoftwareSendQueue {
    entries: Vec<Option<TxDescriptor>>,
    producer: u32,
    consumer: u32,
    doorbells: u64,
}

impl SoftwareSendQueue {
    /// Creates a ring with capacity `f(min_entries)` (next power of two).
    ///
    /// # Panics
    ///
    /// Panics if `min_entries` is zero.
    pub fn new(min_entries: u32) -> Self {
        assert!(min_entries > 0, "ring cannot be empty");
        let cap = min_entries.next_power_of_two();
        let mut entries = Vec::with_capacity(cap as usize);
        entries.resize_with(cap as usize, || None);
        SoftwareSendQueue {
            entries,
            producer: 0,
            consumer: 0,
            doorbells: 0,
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> u32 {
        self.entries.len() as u32
    }

    /// Host-memory bytes this ring occupies (the Table 3 `S_txq` per-queue
    /// term).
    pub fn memory_bytes(&self) -> u64 {
        self.capacity() as u64 * SW_TX_DESC_SIZE as u64
    }

    /// Outstanding (posted, uncompleted) descriptors.
    pub fn in_flight(&self) -> u32 {
        self.producer - self.consumer
    }

    /// Posts a descriptor; `false` when the ring is full.
    pub fn post(&mut self, desc: TxDescriptor) -> bool {
        if self.in_flight() == self.capacity() {
            return false;
        }
        let slot = (self.producer % self.capacity()) as usize;
        self.entries[slot] = Some(desc);
        self.producer += 1;
        true
    }

    /// Rings the doorbell (MMIO), announcing the current producer index.
    pub fn ring_doorbell(&mut self) -> u32 {
        self.doorbells += 1;
        self.producer
    }

    /// Doorbells rung.
    pub fn doorbells(&self) -> u64 {
        self.doorbells
    }

    /// NIC side: fetches the next posted descriptor, if any.
    pub fn nic_fetch(&mut self) -> Option<(u32, TxDescriptor)> {
        if self.consumer == self.producer {
            return None;
        }
        let idx = self.consumer;
        let slot = (idx % self.capacity()) as usize;
        let desc = self.entries[slot].take().expect("posted slot populated");
        self.consumer += 1;
        Some((idx, desc))
    }
}

/// The shared receive ring + buffer pool of § 2.2 ("NICs allow sharing
/// their data buffers through a shared receive queue").
#[derive(Debug)]
pub struct SharedReceiveQueue {
    /// Posted buffer handles (opaque addresses).
    posted: VecDeque<u64>,
    capacity: u32,
    consumed: u64,
}

impl SharedReceiveQueue {
    /// Creates an SRQ of `f(min_entries)` descriptors.
    ///
    /// # Panics
    ///
    /// Panics if `min_entries` is zero.
    pub fn new(min_entries: u32) -> Self {
        assert!(min_entries > 0, "ring cannot be empty");
        SharedReceiveQueue {
            posted: VecDeque::new(),
            capacity: min_entries.next_power_of_two(),
            consumed: 0,
        }
    }

    /// Host-memory bytes of the descriptor ring (`S_srq`).
    pub fn memory_bytes(&self) -> u64 {
        self.capacity as u64 * SW_RX_DESC_SIZE as u64
    }

    /// Posts a receive buffer; `false` when the ring is full.
    pub fn post(&mut self, buffer_addr: u64) -> bool {
        if self.posted.len() as u32 == self.capacity {
            return false;
        }
        self.posted.push_back(buffer_addr);
        true
    }

    /// NIC side: consumes a buffer for an incoming packet.
    pub fn nic_consume(&mut self) -> Option<u64> {
        let b = self.posted.pop_front()?;
        self.consumed += 1;
        Some(b)
    }

    /// Buffers available to the NIC.
    pub fn available(&self) -> u32 {
        self.posted.len() as u32
    }

    /// Buffers consumed over the queue's lifetime.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }
}

/// A completion queue shared by many work queues (§ 2.2: "completion
/// queues can be shared among different transmit and receive queues").
#[derive(Debug)]
pub struct CompletionQueue {
    entries: VecDeque<Cqe>,
    capacity: u32,
    overflows: u64,
}

impl CompletionQueue {
    /// Creates a CQ of `f(min_entries)` CQEs.
    ///
    /// # Panics
    ///
    /// Panics if `min_entries` is zero.
    pub fn new(min_entries: u32) -> Self {
        assert!(min_entries > 0, "ring cannot be empty");
        CompletionQueue {
            entries: VecDeque::new(),
            capacity: min_entries.next_power_of_two(),
            overflows: 0,
        }
    }

    /// Host-memory bytes (`S_cq` contribution).
    pub fn memory_bytes(&self) -> u64 {
        self.capacity as u64 * SW_CQE_SIZE as u64
    }

    /// NIC side: writes a completion. A full CQ is a fatal driver error in
    /// real hardware; here it is counted and the entry dropped.
    pub fn nic_push(&mut self, cqe: Cqe) {
        if self.entries.len() as u32 == self.capacity {
            self.overflows += 1;
            return;
        }
        self.entries.push_back(cqe);
    }

    /// Driver side: polls one completion.
    pub fn poll(&mut self) -> Option<Cqe> {
        self.entries.pop_front()
    }

    /// CQ overflow events (must stay zero in a correctly sized system).
    pub fn overflows(&self) -> u64 {
        self.overflows
    }
}

/// A complete conventional driver queue set sized per Table 2a/3, for
/// memory-accounting comparisons against FLD.
#[derive(Debug)]
pub struct SoftwareDriverQueues {
    /// Per-queue transmit rings.
    pub send_queues: Vec<SoftwareSendQueue>,
    /// The shared receive ring.
    pub srq: SharedReceiveQueue,
    /// One shared CQ for transmit, one for receive.
    pub tx_cq: CompletionQueue,
    /// Receive completion queue.
    pub rx_cq: CompletionQueue,
}

impl SoftwareDriverQueues {
    /// Allocates the § 4.3 example configuration: `n_queues` send rings of
    /// `n_txdesc` entries, an SRQ of `n_rxdesc`, and shared CQs.
    pub fn provision(n_queues: u32, n_txdesc: u32, n_rxdesc: u32) -> Self {
        SoftwareDriverQueues {
            send_queues: (0..n_queues)
                .map(|_| SoftwareSendQueue::new(n_txdesc))
                .collect(),
            srq: SharedReceiveQueue::new(n_rxdesc),
            tx_cq: CompletionQueue::new(n_txdesc),
            rx_cq: CompletionQueue::new(n_rxdesc),
        }
    }

    /// Total ring memory in bytes (excludes data buffers).
    pub fn ring_memory_bytes(&self) -> u64 {
        self.send_queues
            .iter()
            .map(SoftwareSendQueue::memory_bytes)
            .sum::<u64>()
            + self.srq.memory_bytes()
            + self.tx_cq.memory_bytes()
            + self.rx_cq.memory_bytes()
    }
}

/// Lifecycle state of a work queue with respect to errors (the mlx5
/// model: `RST → RDY → ERR → RST → RDY`, driven by the driver after an
/// error CQE).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueErrorState {
    /// Accepting and executing WQEs.
    Ready,
    /// An error CQE fired: the queue rejects new work and flushes
    /// outstanding WQEs with flushed-in-error CQEs until re-initialized.
    Error,
}

/// The per-queue error state machine of a mlx5-style NIC: on an error
/// CQE the queue transitions to [`QueueErrorState::Error`], every
/// outstanding WQE completes with a flushed-in-error CQE (no data moves),
/// and after a driver-driven re-initialization delay the queue returns to
/// [`QueueErrorState::Ready`].
///
/// The machine keeps the full audit trail — error CQEs seen, WQEs flushed,
/// re-inits performed — so fault-aware conservation checks can account for
/// every packet a flush discarded.
#[derive(Debug)]
pub struct QueueErrorMachine {
    state: QueueErrorState,
    reinit_delay: SimDuration,
    reinit_done: SimTime,
    error_cqes: u64,
    flushed_in_error: u64,
    reinits: u64,
}

impl QueueErrorMachine {
    /// Creates a ready queue whose recovery (queue flush + modify-QP back
    /// to ready) takes `reinit_delay` of simulated time.
    pub fn new(reinit_delay: SimDuration) -> Self {
        QueueErrorMachine {
            state: QueueErrorState::Ready,
            reinit_delay,
            reinit_done: SimTime::ZERO,
            error_cqes: 0,
            flushed_in_error: 0,
            reinits: 0,
        }
    }

    /// An error CQE surfaced for this queue at `now` with `outstanding`
    /// WQEs still posted: enter the error state and flush them all.
    /// Returns the number of flushed-in-error completions generated.
    ///
    /// A queue already in error absorbs the CQE (counted) without
    /// restarting the re-init clock — the flush is already under way.
    pub fn on_error_cqe(&mut self, now: SimTime, outstanding: u64) -> u64 {
        self.error_cqes += 1;
        if self.state == QueueErrorState::Error {
            return 0;
        }
        self.state = QueueErrorState::Error;
        self.flushed_in_error += outstanding;
        self.reinit_done = now + self.reinit_delay;
        outstanding
    }

    /// Forces the queue into the error state at `now` with recovery
    /// deferred until `reinit_at` — the node-crash path, where the
    /// outage window is scripted rather than derived from the per-queue
    /// re-init delay. Counts as one error CQE; a queue already in error
    /// has its re-init horizon *extended* to `reinit_at` if that is
    /// later (a crash on top of a transient error keeps the queue down
    /// for the crash's full duration).
    pub fn force_error(&mut self, now: SimTime, reinit_at: SimTime) {
        self.error_cqes += 1;
        self.state = QueueErrorState::Error;
        self.reinit_done = self.reinit_done.max(reinit_at).max(now);
    }

    /// Polls the machine: a queue in error whose re-init delay has elapsed
    /// returns to ready. Returns whether the queue can accept work at `now`.
    pub fn is_ready(&mut self, now: SimTime) -> bool {
        if self.state == QueueErrorState::Error && now >= self.reinit_done {
            self.state = QueueErrorState::Ready;
            self.reinits += 1;
        }
        self.state == QueueErrorState::Ready
    }

    /// Current state without advancing the re-init clock.
    pub fn state(&self) -> QueueErrorState {
        self.state
    }

    /// Instant at which a queue in error finishes re-initializing.
    pub fn reinit_done(&self) -> SimTime {
        self.reinit_done
    }

    /// Error CQEs absorbed.
    pub fn error_cqes(&self) -> u64 {
        self.error_cqes
    }

    /// WQEs completed flushed-in-error (discarded without transmitting).
    pub fn flushed_in_error(&self) -> u64 {
        self.flushed_in_error
    }

    /// Completed error → ready recoveries.
    pub fn reinits(&self) -> u64 {
        self.reinits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(len: u32) -> TxDescriptor {
        TxDescriptor {
            addr: 0x1000,
            len,
            lkey: 1,
            queue: 0,
            signalled: true,
            offload_flags: 0,
        }
    }

    #[test]
    fn send_queue_rounds_to_power_of_two() {
        let q = SoftwareSendQueue::new(1133);
        assert_eq!(q.capacity(), 2048);
        assert_eq!(q.memory_bytes(), 2048 * 64);
    }

    #[test]
    fn send_queue_post_fetch_cycle() {
        let mut q = SoftwareSendQueue::new(4);
        assert!(q.post(desc(100)));
        assert!(q.post(desc(200)));
        assert_eq!(q.ring_doorbell(), 2);
        let (i0, d0) = q.nic_fetch().unwrap();
        assert_eq!((i0, d0.len), (0, 100));
        let (i1, d1) = q.nic_fetch().unwrap();
        assert_eq!((i1, d1.len), (1, 200));
        assert!(q.nic_fetch().is_none());
        assert_eq!(q.doorbells(), 1);
    }

    #[test]
    fn send_queue_full_rejects() {
        let mut q = SoftwareSendQueue::new(2);
        assert!(q.post(desc(1)));
        assert!(q.post(desc(2)));
        assert!(!q.post(desc(3)), "full ring must reject");
        q.nic_fetch();
        assert!(q.post(desc(3)), "space after fetch");
    }

    #[test]
    fn send_queue_wraps() {
        let mut q = SoftwareSendQueue::new(2);
        for i in 0..100u32 {
            assert!(q.post(desc(i)));
            let (_, d) = q.nic_fetch().unwrap();
            assert_eq!(d.len, i);
        }
    }

    #[test]
    fn srq_shares_buffers_fifo() {
        let mut srq = SharedReceiveQueue::new(200);
        assert_eq!(srq.memory_bytes(), 256 * 16); // f(200)=256, Table 3 S_srq shape
        for a in 0..10u64 {
            assert!(srq.post(0x1000 + a));
        }
        assert_eq!(srq.nic_consume(), Some(0x1000));
        assert_eq!(srq.nic_consume(), Some(0x1001));
        assert_eq!(srq.available(), 8);
        assert_eq!(srq.consumed(), 2);
    }

    #[test]
    fn cq_overflow_counted() {
        let mut cq = CompletionQueue::new(2);
        let cqe = Cqe {
            queue: 0,
            wqe_index: 0,
            byte_len: 0,
            rss_hash: 0,
            context_id: 0,
            checksum_ok: true,
            end_of_message: true,
        };
        cq.nic_push(cqe);
        cq.nic_push(cqe);
        cq.nic_push(cqe); // overflow
        assert_eq!(cq.overflows(), 1);
        assert!(cq.poll().is_some());
        assert!(cq.poll().is_some());
        assert!(cq.poll().is_none());
    }

    #[test]
    fn error_machine_flushes_then_reinits() {
        let mut m = QueueErrorMachine::new(SimDuration::from_micros(5));
        let t0 = SimTime::from_nanos(100);
        assert!(m.is_ready(t0));
        // Error CQE with 3 outstanding WQEs: all flushed in error.
        assert_eq!(m.on_error_cqe(t0, 3), 3);
        assert_eq!(m.state(), QueueErrorState::Error);
        assert_eq!(m.flushed_in_error(), 3);
        assert!(!m.is_ready(t0), "queue rejects work while in error");
        // A second error CQE during the flush is absorbed without
        // re-flushing or extending the recovery.
        assert_eq!(m.on_error_cqe(t0 + SimDuration::from_micros(1), 2), 0);
        assert_eq!(m.error_cqes(), 2);
        assert_eq!(m.flushed_in_error(), 3);
        assert_eq!(m.reinit_done(), t0 + SimDuration::from_micros(5));
        // Past the re-init delay the queue recovers.
        assert!(m.is_ready(m.reinit_done()));
        assert_eq!(m.state(), QueueErrorState::Ready);
        assert_eq!(m.reinits(), 1);
        // And can fail again.
        assert_eq!(m.on_error_cqe(SimTime::from_millis(1), 1), 1);
        assert_eq!(m.flushed_in_error(), 4);
    }

    /// The real rings priced by Table 3: 512 queues of f(1133) 64 B WQEs +
    /// f(227)-entry SRQ + shared CQs = the 64 MiB + 4 KiB + 144 KiB terms.
    #[test]
    fn provisioned_memory_matches_table3_terms() {
        let q = SoftwareDriverQueues::provision(512, 1133, 227);
        let tx_rings: u64 = q
            .send_queues
            .iter()
            .map(SoftwareSendQueue::memory_bytes)
            .sum();
        assert_eq!(tx_rings, 64 * 1024 * 1024);
        assert_eq!(q.srq.memory_bytes(), 4096);
        assert_eq!(q.tx_cq.memory_bytes() + q.rx_cq.memory_bytes(), 144 * 1024);
        // The grand total matches Table 3's ring terms exactly.
        assert_eq!(q.ring_memory_bytes(), 64 * 1024 * 1024 + 4096 + 144 * 1024);
    }
}
