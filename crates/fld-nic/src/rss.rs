//! Receive-side scaling: Toeplitz hash plus an indirection table, and the
//! fragment fallback behaviour that motivates the defragmentation offload.

use fld_net::toeplitz::Toeplitz;

use crate::packet::PacketMeta;

/// An RSS context: hash function + indirection table over receive queues.
#[derive(Debug)]
pub struct RssContext {
    toeplitz: Toeplitz,
    /// Maps `hash % len` to a queue index.
    indirection: Vec<u16>,
}

impl RssContext {
    /// Creates a context spreading across `queues` queues with an identity
    /// indirection table of 128 entries (a common default size).
    ///
    /// # Panics
    ///
    /// Panics if `queues` is zero.
    pub fn new(queues: u16) -> Self {
        assert!(queues > 0, "need at least one queue");
        RssContext {
            toeplitz: Toeplitz::default(),
            indirection: (0..128).map(|i| i % queues).collect(),
        }
    }

    /// Number of distinct target queues.
    pub fn queue_count(&self) -> u16 {
        self.indirection.iter().copied().max().map_or(1, |m| m + 1)
    }

    /// Computes the RSS hash the NIC would report for this packet.
    ///
    /// Non-first IP fragments lack L4 ports, so — like real NICs — the hash
    /// falls back to the 2-tuple. First fragments hash on the 2-tuple as
    /// well so all fragments of a datagram land on one queue.
    pub fn hash(&self, meta: &PacketMeta) -> u32 {
        if meta.is_fragment {
            self.toeplitz.hash_ip_pair(&meta.flow)
        } else {
            self.toeplitz.hash_flow(&meta.flow)
        }
    }

    /// Picks the receive queue for this packet.
    pub fn queue_for(&self, meta: &PacketMeta) -> u16 {
        let h = self.hash(meta);
        self.indirection[h as usize % self.indirection.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fld_net::{FlowKey, Ipv4Addr};

    fn meta(src_port: u16) -> PacketMeta {
        PacketMeta {
            flow: FlowKey::new(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(10, 0, 0, 2),
                src_port,
                5201,
                6,
            ),
            ..PacketMeta::default()
        }
    }

    #[test]
    fn spreads_flows_across_queues() {
        let rss = RssContext::new(16);
        let mut seen = std::collections::HashSet::new();
        for port in 1000..1200 {
            seen.insert(rss.queue_for(&meta(port)));
        }
        assert!(seen.len() >= 12, "only {} queues used", seen.len());
    }

    #[test]
    fn same_flow_same_queue() {
        let rss = RssContext::new(16);
        assert_eq!(rss.queue_for(&meta(1234)), rss.queue_for(&meta(1234)));
    }

    #[test]
    fn fragments_collapse_to_l3_hash() {
        // The key pathology of § 8.2.2: many flows between one host pair all
        // hash to the *same* queue once fragmented, because ports are
        // unavailable.
        let rss = RssContext::new(16);
        let mut queues = std::collections::HashSet::new();
        for port in 1000..1060 {
            let mut m = meta(port);
            m.is_fragment = true;
            queues.insert(rss.queue_for(&m));
        }
        assert_eq!(queues.len(), 1, "all fragments must land on one queue");
    }

    #[test]
    fn first_and_later_fragments_agree() {
        let rss = RssContext::new(8);
        let mut first = meta(4242);
        first.is_fragment = true;
        first.first_fragment = true;
        let mut rest = meta(0); // later fragments have no ports
        rest.is_fragment = true;
        assert_eq!(rss.queue_for(&first), rss.queue_for(&rest));
    }

    #[test]
    fn queue_count_reflects_table() {
        assert_eq!(RssContext::new(4).queue_count(), 4);
        assert_eq!(RssContext::new(1).queue_count(), 1);
    }
}
