//! The NIC's hardware RDMA transport: reliable-connection (RC) queue pairs
//! with segmentation, ordering, acknowledgements and go-back-N retransmit.
//!
//! This is the offload that makes FLD-R possible: *"RDMA-capable NICs
//! implement the transport layer in hardware, but using it requires one to
//! access NIC's PCIe interface"* (§ 3) — which is exactly what FlexDriver
//! does. The model implements the transport at packet granularity so the
//! simulation exercises real segmentation, ACK traffic and loss recovery.

use std::collections::VecDeque;

use fld_net::roce::BthOpcode;
use fld_sim::time::{SimDuration, SimTime};

/// Per-packet RoCE v2 framing bytes: Eth(14) + IPv4(20) + UDP(8) + BTH(12)
/// + ICRC(4).
pub const ROCE_HEADER_BYTES: u32 = 58;

/// Queue-pair states (IBTA state machine, reduced to what the model needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QpState {
    /// Freshly created.
    Reset,
    /// Ready to receive.
    ReadyToReceive,
    /// Ready to send (fully connected).
    ReadyToSend,
    /// Error: all work requests complete with failure.
    Error,
}

/// A packet emitted by the transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RdmaPacket {
    /// Destination QP number.
    pub dest_qp: u32,
    /// Source QP number.
    pub src_qp: u32,
    /// Opcode (send first/middle/last/only or ack).
    pub opcode: BthOpcode,
    /// Packet sequence number.
    pub psn: u32,
    /// Payload bytes (0 for ACKs).
    pub payload: u32,
    /// Work-request id of the message this packet belongs to (model-level
    /// convenience; real BTH carries no wr_id).
    pub wr_id: u64,
}

impl RdmaPacket {
    /// Total frame bytes on the wire.
    pub fn frame_len(&self) -> u32 {
        self.payload + ROCE_HEADER_BYTES
    }
}

/// Completion and delivery events surfaced to the QP owner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RdmaEvent {
    /// A posted send has been acknowledged end-to-end.
    SendComplete {
        /// Work request id.
        wr_id: u64,
    },
    /// Payload bytes of an incoming message arrived (MPRQ-style incremental
    /// delivery: one event per packet, § 6 "allows processing the message
    /// incrementally").
    RecvSegment {
        /// Bytes in this segment.
        bytes: u32,
        /// Source QP.
        src_qp: u32,
    },
    /// An incoming message completed (last packet arrived in order).
    RecvComplete {
        /// Total message bytes.
        bytes: u32,
        /// Source QP.
        src_qp: u32,
    },
    /// The QP transitioned to the error state.
    Fatal,
}

#[derive(Debug, Clone, Copy)]
struct PendingSend {
    wr_id: u64,
    total: u32,
    sent: u32,
    start_psn: u32,
}

#[derive(Debug, Clone, Copy)]
struct InflightPacket {
    psn: u32,
    payload: u32,
    opcode: BthOpcode,
    wr_id: u64,
    sent_at: SimTime,
}

/// Configuration of an RC queue pair.
#[derive(Debug, Clone, Copy)]
pub struct QpConfig {
    /// Path MTU in bytes (the paper's RoCE experiments use 1024).
    pub mtu: u32,
    /// Maximum outstanding (unacknowledged) packets.
    pub window: usize,
    /// Retransmission timeout.
    pub retransmit_timeout: SimDuration,
    /// Generate an ACK after this many received packets (coalescing);
    /// the last packet of a message always ACKs.
    pub ack_coalesce: u32,
}

impl Default for QpConfig {
    fn default() -> Self {
        QpConfig {
            mtu: 1024,
            window: 256,
            retransmit_timeout: SimDuration::from_micros(100),
            ack_coalesce: 4,
        }
    }
}

const PSN_MOD: u32 = 1 << 23;

/// A reliable-connection queue pair (one side).
#[derive(Debug)]
pub struct RcQp {
    qpn: u32,
    peer_qpn: u32,
    state: QpState,
    config: QpConfig,
    // --- requester (send) side ---
    send_queue: VecDeque<PendingSend>,
    next_psn: u32,
    inflight: VecDeque<InflightPacket>,
    // --- responder (receive) side ---
    expected_psn: u32,
    recv_in_progress: u32,
    unacked_count: u32,
    // --- stats ---
    retransmits: u64,
    sent_packets: u64,
    received_packets: u64,
}

impl RcQp {
    /// Creates a QP in the Reset state.
    pub fn new(qpn: u32, config: QpConfig) -> Self {
        RcQp {
            qpn,
            peer_qpn: 0,
            state: QpState::Reset,
            config,
            send_queue: VecDeque::new(),
            next_psn: 0,
            inflight: VecDeque::new(),
            expected_psn: 0,
            recv_in_progress: 0,
            unacked_count: 0,
            retransmits: 0,
            sent_packets: 0,
            received_packets: 0,
        }
    }

    /// This QP's number.
    pub fn qpn(&self) -> u32 {
        self.qpn
    }

    /// The connected peer's QP number.
    pub fn peer_qpn(&self) -> u32 {
        self.peer_qpn
    }

    /// Current state.
    pub fn state(&self) -> QpState {
        self.state
    }

    /// Packets retransmitted so far.
    pub fn retransmits(&self) -> u64 {
        self.retransmits
    }

    /// Data packets sent (first transmissions and retransmissions).
    pub fn sent_packets(&self) -> u64 {
        self.sent_packets
    }

    /// Data packets accepted in order.
    pub fn received_packets(&self) -> u64 {
        self.received_packets
    }

    /// Connects to a peer QP: Reset → RTR → RTS in one step (the control
    /// plane performs the full IBTA handshake; the model needs only the
    /// result).
    ///
    /// # Panics
    ///
    /// Panics unless the QP is in Reset.
    pub fn connect(&mut self, peer_qpn: u32) {
        assert_eq!(self.state, QpState::Reset, "connect from non-Reset state");
        self.peer_qpn = peer_qpn;
        self.state = QpState::ReadyToSend;
    }

    /// Moves the QP to the error state; pending work completes with
    /// [`RdmaEvent::Fatal`].
    pub fn set_error(&mut self) {
        self.state = QpState::Error;
    }

    /// Posts a send work request of `bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics unless the QP is in RTS.
    pub fn post_send(&mut self, wr_id: u64, bytes: u32) {
        assert_eq!(self.state, QpState::ReadyToSend, "post_send requires RTS");
        let packets = bytes.div_ceil(self.config.mtu).max(1);
        self.send_queue.push_back(PendingSend {
            wr_id,
            total: bytes,
            sent: 0,
            start_psn: self.next_psn,
        });
        self.next_psn = (self.next_psn + packets) % PSN_MOD;
    }

    /// Number of posted-but-unacknowledged sends.
    pub fn outstanding_sends(&self) -> usize {
        self.send_queue.len() + self.inflight.iter().filter(|p| p.opcode.is_last()).count()
    }

    /// The next PSN this QP will assign to an outgoing packet
    /// (flight-recorder probe; audited to move forward monotonically
    /// modulo the PSN space).
    pub fn next_psn(&self) -> u32 {
        self.next_psn
    }

    /// The next PSN this QP expects to receive in order (flight-recorder
    /// probe; audited like [`RcQp::next_psn`]).
    pub fn expected_psn(&self) -> u32 {
        self.expected_psn
    }

    /// Unacknowledged packets currently in flight on the wire — the PSN
    /// window occupancy (flight-recorder probe; audited to stay within
    /// the configured window).
    pub fn inflight_packets(&self) -> usize {
        self.inflight.len()
    }

    /// The configured maximum in-flight window, in packets.
    pub fn window(&self) -> usize {
        self.config.window
    }

    /// Emits as many packets as the window allows at time `now`.
    pub fn poll_transmit(&mut self, now: SimTime) -> Vec<RdmaPacket> {
        let mut out = Vec::new();
        if self.state != QpState::ReadyToSend {
            return out;
        }
        while self.inflight.len() < self.config.window {
            let Some(head) = self.send_queue.front_mut() else {
                break;
            };
            let remaining = head.total - head.sent;
            let chunk = remaining.min(self.config.mtu).max(
                // Zero-length messages still send one packet.
                if head.total == 0 { 0 } else { 1 },
            );
            let total_pkts = head.total.div_ceil(self.config.mtu).max(1) as usize;
            let index = (head.sent / self.config.mtu.max(1)) as usize;
            let opcode = BthOpcode::send_for_position(index, total_pkts);
            let psn = (head.start_psn + index as u32) % PSN_MOD;
            let pkt = RdmaPacket {
                dest_qp: self.peer_qpn,
                src_qp: self.qpn,
                opcode,
                psn,
                payload: chunk,
                wr_id: head.wr_id,
            };
            self.inflight.push_back(InflightPacket {
                psn,
                payload: chunk,
                opcode,
                wr_id: head.wr_id,
                sent_at: now,
            });
            self.sent_packets += 1;
            out.push(pkt);
            head.sent += chunk;
            if opcode.is_last() {
                self.send_queue.pop_front();
            }
        }
        out
    }

    /// Handles an incoming packet addressed to this QP, returning events
    /// and any ACK packet to transmit back.
    pub fn on_packet(&mut self, pkt: &RdmaPacket) -> (Vec<RdmaEvent>, Option<RdmaPacket>) {
        let mut events = Vec::new();
        if self.state == QpState::Error {
            return (events, None);
        }
        if pkt.opcode == BthOpcode::Ack {
            self.on_ack(pkt.psn, &mut events);
            return (events, None);
        }
        // Responder path: strict PSN ordering (go-back-N).
        if pkt.psn != self.expected_psn {
            let behind = (self.expected_psn.wrapping_sub(pkt.psn)) % PSN_MOD;
            if behind != 0 && behind < PSN_MOD / 2 {
                // Duplicate of an already-received packet: the original ACK
                // may have been lost, so re-acknowledge the latest in-order
                // PSN (IBTA duplicate-request handling) — otherwise the
                // requester could retransmit forever.
                let ack_psn = (self.expected_psn + PSN_MOD - 1) % PSN_MOD;
                let ack = RdmaPacket {
                    dest_qp: pkt.src_qp,
                    src_qp: self.qpn,
                    opcode: BthOpcode::Ack,
                    psn: ack_psn,
                    payload: 0,
                    wr_id: 0,
                };
                return (events, Some(ack));
            }
            // A gap (future packet): drop silently; the timer recovers.
            return (events, None);
        }
        self.expected_psn = (self.expected_psn + 1) % PSN_MOD;
        self.received_packets += 1;
        self.recv_in_progress += pkt.payload;
        self.unacked_count += 1;
        events.push(RdmaEvent::RecvSegment {
            bytes: pkt.payload,
            src_qp: pkt.src_qp,
        });
        let mut ack = None;
        if pkt.opcode.is_last() {
            events.push(RdmaEvent::RecvComplete {
                bytes: self.recv_in_progress,
                src_qp: pkt.src_qp,
            });
            self.recv_in_progress = 0;
        }
        if pkt.opcode.is_last() || self.unacked_count >= self.config.ack_coalesce {
            self.unacked_count = 0;
            ack = Some(RdmaPacket {
                dest_qp: pkt.src_qp,
                src_qp: self.qpn,
                opcode: BthOpcode::Ack,
                psn: pkt.psn,
                payload: 0,
                wr_id: 0,
            });
        }
        (events, ack)
    }

    /// Processes a (possibly coalesced) ACK covering everything up to and
    /// including `psn`.
    fn on_ack(&mut self, psn: u32, events: &mut Vec<RdmaEvent>) {
        while let Some(front) = self.inflight.front() {
            // Sequence-space comparison modulo 2^23.
            let diff = (psn.wrapping_sub(front.psn)) % PSN_MOD;
            if diff < PSN_MOD / 2 {
                let pkt = self.inflight.pop_front().expect("checked front");
                if pkt.opcode.is_last() {
                    events.push(RdmaEvent::SendComplete { wr_id: pkt.wr_id });
                }
            } else {
                break;
            }
        }
    }

    /// Checks the retransmission timer: if the oldest in-flight packet has
    /// waited past the timeout, go-back-N: every in-flight packet is
    /// re-emitted.
    pub fn poll_timeout(&mut self, now: SimTime) -> Vec<RdmaPacket> {
        let Some(oldest) = self.inflight.front() else {
            return Vec::new();
        };
        if now.saturating_since(oldest.sent_at) < self.config.retransmit_timeout {
            return Vec::new();
        }
        self.retransmits += self.inflight.len() as u64;
        self.sent_packets += self.inflight.len() as u64;
        self.inflight
            .iter_mut()
            .map(|p| {
                p.sent_at = now;
                RdmaPacket {
                    dest_qp: self.peer_qpn,
                    src_qp: self.qpn,
                    opcode: p.opcode,
                    psn: p.psn,
                    payload: p.payload,
                    wr_id: p.wr_id,
                }
            })
            .collect()
    }

    /// Earliest instant at which [`RcQp::poll_timeout`] could fire, for
    /// event scheduling.
    pub fn next_timeout(&self) -> Option<SimTime> {
        self.inflight
            .front()
            .map(|p| p.sent_at + self.config.retransmit_timeout)
    }
}

impl fld_sim::engine::Component for RcQp {
    /// One probe: packets currently in the transmit window
    /// (`"{name}.inflight_window"`).
    fn probes(
        &mut self,
        name: &str,
        _now: SimTime,
        _interval: SimDuration,
        out: &mut fld_sim::engine::Probes,
    ) {
        out.push(
            format!("{name}.inflight_window"),
            self.inflight_packets() as f64,
        );
    }

    /// Window-credit bound plus PSN monotonicity of both sequence
    /// counters.
    fn audit(&mut self, name: &str, at: SimTime, auditor: &mut fld_sim::audit::Auditor) {
        auditor.check_credits(
            at,
            &format!("{name}.inflight"),
            self.inflight_packets() as u64,
            self.window() as u64,
        );
        auditor.check_psn(at, &format!("{name}.next_psn"), u64::from(self.next_psn()));
        auditor.check_psn(
            at,
            &format!("{name}.expected_psn"),
            u64::from(self.expected_psn()),
        );
    }

    /// Exports `"{name}.retransmits"`.
    fn export_metrics(
        &self,
        name: &str,
        _end: SimTime,
        registry: &mut fld_sim::metrics::MetricsRegistry,
    ) {
        registry.counter(format!("{name}.retransmits"), self.retransmits());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (RcQp, RcQp) {
        let mut a = RcQp::new(100, QpConfig::default());
        let mut b = RcQp::new(200, QpConfig::default());
        a.connect(200);
        b.connect(100);
        (a, b)
    }

    /// Delivers packets between QPs until quiescent; returns events per side.
    fn run_lossless(a: &mut RcQp, b: &mut RcQp) -> (Vec<RdmaEvent>, Vec<RdmaEvent>) {
        let mut ev_a = Vec::new();
        let mut ev_b = Vec::new();
        let now = SimTime::ZERO;
        loop {
            let mut moved = false;
            for pkt in a.poll_transmit(now) {
                moved = true;
                let (evs, ack) = b.on_packet(&pkt);
                ev_b.extend(evs);
                if let Some(ack) = ack {
                    let (evs, _) = a.on_packet(&ack);
                    ev_a.extend(evs);
                }
            }
            for pkt in b.poll_transmit(now) {
                moved = true;
                let (evs, ack) = a.on_packet(&pkt);
                ev_a.extend(evs);
                if let Some(ack) = ack {
                    let (evs, _) = b.on_packet(&ack);
                    ev_b.extend(evs);
                }
            }
            if !moved {
                break;
            }
        }
        (ev_a, ev_b)
    }

    #[test]
    fn single_packet_message() {
        let (mut a, mut b) = pair();
        a.post_send(1, 512);
        let (ev_a, ev_b) = run_lossless(&mut a, &mut b);
        assert!(ev_a.contains(&RdmaEvent::SendComplete { wr_id: 1 }));
        assert!(ev_b.contains(&RdmaEvent::RecvComplete {
            bytes: 512,
            src_qp: 100
        }));
    }

    #[test]
    fn multi_packet_segmentation() {
        let (mut a, _b) = pair();
        a.post_send(7, 4096 + 100); // 5 packets at MTU 1024
        let pkts = a.poll_transmit(SimTime::ZERO);
        assert_eq!(pkts.len(), 5);
        assert_eq!(pkts[0].opcode, BthOpcode::SendFirst);
        assert_eq!(pkts[4].opcode, BthOpcode::SendLast);
        assert_eq!(pkts[4].payload, 100);
        assert!(pkts[1..4].iter().all(|p| p.opcode == BthOpcode::SendMiddle));
        // PSNs are consecutive.
        for (i, p) in pkts.iter().enumerate() {
            assert_eq!(p.psn, i as u32);
        }
    }

    #[test]
    fn message_larger_than_mtu_completes_once() {
        let (mut a, mut b) = pair();
        a.post_send(9, 10_000);
        let (ev_a, ev_b) = run_lossless(&mut a, &mut b);
        let completes: Vec<_> = ev_b
            .iter()
            .filter(|e| matches!(e, RdmaEvent::RecvComplete { .. }))
            .collect();
        assert_eq!(completes.len(), 1);
        assert!(matches!(
            completes[0],
            RdmaEvent::RecvComplete { bytes: 10_000, .. }
        ));
        assert_eq!(
            ev_a.iter()
                .filter(|e| matches!(e, RdmaEvent::SendComplete { .. }))
                .count(),
            1
        );
        // Incremental segments sum to the message size.
        let seg_sum: u32 = ev_b
            .iter()
            .filter_map(|e| match e {
                RdmaEvent::RecvSegment { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .sum();
        assert_eq!(seg_sum, 10_000);
    }

    #[test]
    fn multiple_messages_in_order() {
        let (mut a, mut b) = pair();
        for wr in 0..10 {
            a.post_send(wr, 2000);
        }
        let (ev_a, ev_b) = run_lossless(&mut a, &mut b);
        let sends: Vec<u64> = ev_a
            .iter()
            .filter_map(|e| match e {
                RdmaEvent::SendComplete { wr_id } => Some(*wr_id),
                _ => None,
            })
            .collect();
        assert_eq!(sends, (0..10).collect::<Vec<_>>());
        assert_eq!(
            ev_b.iter()
                .filter(|e| matches!(e, RdmaEvent::RecvComplete { .. }))
                .count(),
            10
        );
    }

    #[test]
    fn loss_recovered_by_timeout() {
        let (mut a, mut b) = pair();
        a.post_send(1, 3000); // 3 packets
        let mut pkts = a.poll_transmit(SimTime::ZERO);
        // Drop the middle packet.
        let dropped = pkts.remove(1);
        assert_eq!(dropped.psn, 1);
        let mut acks = Vec::new();
        for p in &pkts {
            let (_, ack) = b.on_packet(p);
            acks.extend(ack);
        }
        // The receiver must NOT complete (packet 2 arrived out of order and
        // was dropped).
        for ack in &acks {
            a.on_packet(ack);
        }
        // Fire the retransmit timer.
        let later = SimTime::ZERO + SimDuration::from_millis(1);
        let retrans = a.poll_timeout(later);
        assert!(!retrans.is_empty(), "timeout must retransmit");
        assert!(a.retransmits() > 0);
        let mut done = false;
        for p in retrans {
            let (evs, ack) = b.on_packet(&p);
            for e in evs {
                if matches!(e, RdmaEvent::RecvComplete { bytes: 3000, .. }) {
                    done = true;
                }
            }
            if let Some(ack) = ack {
                a.on_packet(&ack);
            }
        }
        assert!(done, "message must complete after retransmission");
        assert!(a.inflight.is_empty(), "all packets acknowledged");
    }

    #[test]
    fn window_limits_inflight() {
        let config = QpConfig {
            window: 4,
            ..QpConfig::default()
        };
        let mut a = RcQp::new(1, config);
        a.connect(2);
        a.post_send(1, 100 * 1024); // 100 packets
        let pkts = a.poll_transmit(SimTime::ZERO);
        assert_eq!(pkts.len(), 4, "window must cap transmissions");
        // No progress until ACKs arrive.
        assert!(a.poll_transmit(SimTime::ZERO).is_empty());
    }

    #[test]
    fn duplicate_packets_reacked_not_redelivered() {
        let (mut a, mut b) = pair();
        a.post_send(1, 100);
        let pkts = a.poll_transmit(SimTime::ZERO);
        let (ev1, ack1) = b.on_packet(&pkts[0]);
        assert!(!ev1.is_empty());
        assert!(ack1.is_some());
        let (ev2, ack2) = b.on_packet(&pkts[0]); // replay
        assert!(ev2.is_empty(), "duplicate must not be redelivered");
        // But it must be re-acknowledged in case the first ACK was lost.
        let ack2 = ack2.expect("duplicate triggers re-ack");
        assert_eq!(ack2.psn, pkts[0].psn);
        assert_eq!(b.received_packets(), 1);
    }

    #[test]
    fn error_state_is_quiescent() {
        let (mut a, mut b) = pair();
        a.post_send(1, 100);
        a.set_error();
        assert!(a.poll_transmit(SimTime::ZERO).is_empty());
        assert_eq!(a.state(), QpState::Error);
        b.set_error();
        let pkt = RdmaPacket {
            dest_qp: 200,
            src_qp: 100,
            opcode: BthOpcode::SendOnly,
            psn: 0,
            payload: 10,
            wr_id: 0,
        };
        let (evs, ack) = b.on_packet(&pkt);
        assert!(evs.is_empty());
        assert!(ack.is_none());
    }

    #[test]
    #[should_panic]
    fn post_send_requires_rts() {
        let mut qp = RcQp::new(1, QpConfig::default());
        qp.post_send(0, 10);
    }

    #[test]
    fn frame_len_includes_roce_headers() {
        let pkt = RdmaPacket {
            dest_qp: 1,
            src_qp: 2,
            opcode: BthOpcode::SendOnly,
            psn: 0,
            payload: 1024,
            wr_id: 0,
        };
        assert_eq!(pkt.frame_len(), 1024 + 58);
    }
}
