//! The NIC's hardware RDMA transport: reliable-connection (RC) queue pairs
//! with segmentation, ordering, acknowledgements and go-back-N retransmit.
//!
//! This is the offload that makes FLD-R possible: *"RDMA-capable NICs
//! implement the transport layer in hardware, but using it requires one to
//! access NIC's PCIe interface"* (§ 3) — which is exactly what FlexDriver
//! does. The model implements the transport at packet granularity so the
//! simulation exercises real segmentation, ACK traffic and loss recovery.

use std::collections::VecDeque;

use fld_net::roce::{AethSyndrome, BthOpcode, NakCode};
use fld_sim::counters::{Counter, CounterTree};
use fld_sim::time::{SimDuration, SimTime};

/// Per-packet RoCE v2 framing bytes: Eth(14) + IPv4(20) + UDP(8) + BTH(12)
/// + ICRC(4).
pub const ROCE_HEADER_BYTES: u32 = 58;

/// Queue-pair states (IBTA state machine, reduced to what the model needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QpState {
    /// Freshly created.
    Reset,
    /// Ready to receive.
    ReadyToReceive,
    /// Ready to send (fully connected).
    ReadyToSend,
    /// Error: all work requests complete with failure.
    Error,
}

/// A packet emitted by the transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RdmaPacket {
    /// Destination QP number.
    pub dest_qp: u32,
    /// Source QP number.
    pub src_qp: u32,
    /// Opcode (send first/middle/last/only or ack).
    pub opcode: BthOpcode,
    /// AETH syndrome carried by acknowledge packets: positive ACK, RNR
    /// NAK, or NAK with code. Data packets always carry
    /// [`AethSyndrome::Ack`].
    pub syndrome: AethSyndrome,
    /// Packet sequence number.
    pub psn: u32,
    /// Payload bytes (0 for ACKs).
    pub payload: u32,
    /// Work-request id of the message this packet belongs to (model-level
    /// convenience; real BTH carries no wr_id).
    pub wr_id: u64,
}

impl RdmaPacket {
    /// Total frame bytes on the wire.
    pub fn frame_len(&self) -> u32 {
        self.payload + ROCE_HEADER_BYTES
    }
}

/// Completion and delivery events surfaced to the QP owner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RdmaEvent {
    /// A posted send has been acknowledged end-to-end.
    SendComplete {
        /// Work request id.
        wr_id: u64,
    },
    /// Payload bytes of an incoming message arrived (MPRQ-style incremental
    /// delivery: one event per packet, § 6 "allows processing the message
    /// incrementally").
    RecvSegment {
        /// Bytes in this segment.
        bytes: u32,
        /// Source QP.
        src_qp: u32,
    },
    /// An incoming message completed (last packet arrived in order).
    RecvComplete {
        /// Total message bytes.
        bytes: u32,
        /// Source QP.
        src_qp: u32,
    },
    /// The QP transitioned to the error state.
    Fatal,
}

#[derive(Debug, Clone, Copy)]
struct PendingSend {
    wr_id: u64,
    total: u32,
    sent: u32,
    start_psn: u32,
}

#[derive(Debug, Clone, Copy)]
struct InflightPacket {
    psn: u32,
    payload: u32,
    opcode: BthOpcode,
    wr_id: u64,
    sent_at: SimTime,
}

/// Configuration of an RC queue pair.
#[derive(Debug, Clone, Copy)]
pub struct QpConfig {
    /// Path MTU in bytes (the paper's RoCE experiments use 1024).
    pub mtu: u32,
    /// Maximum outstanding (unacknowledged) packets.
    pub window: usize,
    /// Retransmission timeout.
    pub retransmit_timeout: SimDuration,
    /// Generate an ACK after this many received packets (coalescing);
    /// the last packet of a message always ACKs.
    pub ack_coalesce: u32,
    /// Consecutive transport retries (timeouts or sequence-error NAKs)
    /// without forward progress before the QP enters the error state
    /// (IBTA `retry_cnt`; 7 is the common verbs default).
    pub retry_cnt: u8,
    /// RNR NAKs tolerated before the QP enters the error state (IBTA
    /// `rnr_retry`; 7 would mean "infinite" in verbs — the model keeps it
    /// a hard budget so exhaustion is testable).
    pub rnr_retry: u8,
    /// Backoff before retransmitting after an RNR NAK (the decoded IBTA
    /// RNR timer).
    pub rnr_timer: SimDuration,
}

impl Default for QpConfig {
    fn default() -> Self {
        QpConfig {
            mtu: 1024,
            window: 256,
            retransmit_timeout: SimDuration::from_micros(100),
            ack_coalesce: 4,
            retry_cnt: 7,
            rnr_retry: 7,
            rnr_timer: SimDuration::from_micros(20),
        }
    }
}

const PSN_MOD: u32 = 1 << 23;

/// A reliable-connection queue pair (one side).
#[derive(Debug)]
pub struct RcQp {
    qpn: u32,
    peer_qpn: u32,
    state: QpState,
    config: QpConfig,
    // --- requester (send) side ---
    send_queue: VecDeque<PendingSend>,
    next_psn: u32,
    inflight: VecDeque<InflightPacket>,
    // --- responder (receive) side ---
    expected_psn: u32,
    recv_in_progress: u32,
    unacked_count: u32,
    /// One sequence-error NAK per gap episode (cleared by in-order
    /// arrival) so a burst of out-of-order packets cannot start a NAK
    /// storm.
    nak_armed: bool,
    // --- recovery state (requester side) ---
    /// Consecutive transport retries (timeouts + sequence NAKs) without
    /// ACK progress; compared against `retry_cnt`.
    transport_retries: u8,
    /// RNR NAKs absorbed; compared against `rnr_retry`.
    rnr_retries: u8,
    /// NAK-scheduled go-back-N: retransmit everything once this instant
    /// arrives (set by sequence and RNR NAKs).
    recover_at: Option<SimTime>,
    /// Set when the QP transitions to Error on its own (budget
    /// exhaustion); drained by [`RcQp::take_fatal`].
    fatal_pending: bool,
    // --- stats ---
    retransmits: u64,
    sent_packets: u64,
    received_packets: u64,
    timeouts: u64,
    naks_sent: u64,
    naks_received: u64,
    rnr_naks_received: u64,
    /// Responder-side arrivals ahead of `expected_psn` (a gap episode's
    /// packets — what mlx5 reports as `out_of_sequence`).
    out_of_window: u64,
    /// Responder-side duplicate requests re-ACKed (the requester's
    /// original ACK was lost — mlx5's `duplicate_request`).
    duplicate_acks: u64,
    /// Counter-tree handles (`qp/<qpn>/...`), detached until
    /// [`RcQp::wire_counters`].
    ctr: QpCounters,
}

/// The per-QP counter group (one handle per exported statistic).
#[derive(Debug, Default)]
struct QpCounters {
    tx_packets: Counter,
    rx_packets: Counter,
    retransmits: Counter,
    timeouts: Counter,
    naks_sent: Counter,
    naks_received: Counter,
    rnr_naks: Counter,
    out_of_window: Counter,
    duplicate_acks: Counter,
}

impl RcQp {
    /// Creates a QP in the Reset state.
    pub fn new(qpn: u32, config: QpConfig) -> Self {
        RcQp {
            qpn,
            peer_qpn: 0,
            state: QpState::Reset,
            config,
            send_queue: VecDeque::new(),
            next_psn: 0,
            inflight: VecDeque::new(),
            expected_psn: 0,
            recv_in_progress: 0,
            unacked_count: 0,
            nak_armed: false,
            transport_retries: 0,
            rnr_retries: 0,
            recover_at: None,
            fatal_pending: false,
            retransmits: 0,
            sent_packets: 0,
            received_packets: 0,
            timeouts: 0,
            naks_sent: 0,
            naks_received: 0,
            rnr_naks_received: 0,
            out_of_window: 0,
            duplicate_acks: 0,
            ctr: QpCounters::default(),
        }
    }

    /// Registers this QP's counter group under `qp/<qpn>/...` in `tree`,
    /// carrying over anything counted before wiring. Every handle
    /// mirrors the like-named integer statistic exactly; the telescoping
    /// audit holds the two to each other.
    pub fn wire_counters(&mut self, tree: &CounterTree) {
        let base = format!("qp/{}", self.qpn);
        for (leaf, handle, backlog) in [
            ("tx_packets", &mut self.ctr.tx_packets, self.sent_packets),
            (
                "rx_packets",
                &mut self.ctr.rx_packets,
                self.received_packets,
            ),
            ("retransmits", &mut self.ctr.retransmits, self.retransmits),
            ("timeouts", &mut self.ctr.timeouts, self.timeouts),
            ("naks_sent", &mut self.ctr.naks_sent, self.naks_sent),
            (
                "naks_received",
                &mut self.ctr.naks_received,
                self.naks_received,
            ),
            ("rnr_naks", &mut self.ctr.rnr_naks, self.rnr_naks_received),
            (
                "out_of_window",
                &mut self.ctr.out_of_window,
                self.out_of_window,
            ),
            (
                "duplicate_acks",
                &mut self.ctr.duplicate_acks,
                self.duplicate_acks,
            ),
        ] {
            *handle = tree.counter(&format!("{base}/{leaf}"));
            handle.add(backlog);
        }
    }

    /// This QP's number.
    pub fn qpn(&self) -> u32 {
        self.qpn
    }

    /// The connected peer's QP number.
    pub fn peer_qpn(&self) -> u32 {
        self.peer_qpn
    }

    /// Current state.
    pub fn state(&self) -> QpState {
        self.state
    }

    /// Packets retransmitted so far.
    pub fn retransmits(&self) -> u64 {
        self.retransmits
    }

    /// Data packets sent (first transmissions and retransmissions).
    pub fn sent_packets(&self) -> u64 {
        self.sent_packets
    }

    /// Data packets accepted in order.
    pub fn received_packets(&self) -> u64 {
        self.received_packets
    }

    /// Retransmission-timer firings.
    pub fn timeouts(&self) -> u64 {
        self.timeouts
    }

    /// NAKs generated as a responder (sequence-error plus RNR).
    pub fn naks_sent(&self) -> u64 {
        self.naks_sent
    }

    /// NAKs absorbed as a requester (sequence-error plus RNR).
    pub fn naks_received(&self) -> u64 {
        self.naks_received
    }

    /// RNR NAKs absorbed as a requester.
    pub fn rnr_naks_received(&self) -> u64 {
        self.rnr_naks_received
    }

    /// Responder-side arrivals ahead of the expected PSN (gap packets).
    pub fn out_of_window(&self) -> u64 {
        self.out_of_window
    }

    /// Responder-side duplicate requests re-acknowledged.
    pub fn duplicate_acks(&self) -> u64 {
        self.duplicate_acks
    }

    /// Returns and clears the pending fatal notification raised when the
    /// QP entered the error state on its own (retry-budget exhaustion).
    /// The owner surfaces it as [`RdmaEvent::Fatal`].
    pub fn take_fatal(&mut self) -> bool {
        std::mem::take(&mut self.fatal_pending)
    }

    /// Connects to a peer QP: Reset → RTR → RTS in one step (the control
    /// plane performs the full IBTA handshake; the model needs only the
    /// result).
    ///
    /// # Panics
    ///
    /// Panics unless the QP is in Reset.
    pub fn connect(&mut self, peer_qpn: u32) {
        assert_eq!(self.state, QpState::Reset, "connect from non-Reset state");
        self.peer_qpn = peer_qpn;
        self.state = QpState::ReadyToSend;
    }

    /// Moves the QP to the error state; pending work completes with
    /// [`RdmaEvent::Fatal`].
    pub fn set_error(&mut self) {
        self.state = QpState::Error;
    }

    /// Posts a send work request of `bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics unless the QP is in RTS.
    pub fn post_send(&mut self, wr_id: u64, bytes: u32) {
        assert_eq!(self.state, QpState::ReadyToSend, "post_send requires RTS");
        let packets = bytes.div_ceil(self.config.mtu).max(1);
        self.send_queue.push_back(PendingSend {
            wr_id,
            total: bytes,
            sent: 0,
            start_psn: self.next_psn,
        });
        self.next_psn = (self.next_psn + packets) % PSN_MOD;
    }

    /// Number of posted-but-unacknowledged sends.
    pub fn outstanding_sends(&self) -> usize {
        self.send_queue.len() + self.inflight.iter().filter(|p| p.opcode.is_last()).count()
    }

    /// The next PSN this QP will assign to an outgoing packet
    /// (flight-recorder probe; audited to move forward monotonically
    /// modulo the PSN space).
    pub fn next_psn(&self) -> u32 {
        self.next_psn
    }

    /// The next PSN this QP expects to receive in order (flight-recorder
    /// probe; audited like [`RcQp::next_psn`]).
    pub fn expected_psn(&self) -> u32 {
        self.expected_psn
    }

    /// Unacknowledged packets currently in flight on the wire — the PSN
    /// window occupancy (flight-recorder probe; audited to stay within
    /// the configured window).
    pub fn inflight_packets(&self) -> usize {
        self.inflight.len()
    }

    /// The configured maximum in-flight window, in packets.
    pub fn window(&self) -> usize {
        self.config.window
    }

    /// Emits as many packets as the window allows at time `now`.
    pub fn poll_transmit(&mut self, now: SimTime) -> Vec<RdmaPacket> {
        let mut out = Vec::new();
        if self.state != QpState::ReadyToSend {
            return out;
        }
        while self.inflight.len() < self.config.window {
            let Some(head) = self.send_queue.front_mut() else {
                break;
            };
            let remaining = head.total - head.sent;
            let chunk = remaining.min(self.config.mtu).max(
                // Zero-length messages still send one packet.
                if head.total == 0 { 0 } else { 1 },
            );
            let total_pkts = head.total.div_ceil(self.config.mtu).max(1) as usize;
            let index = (head.sent / self.config.mtu.max(1)) as usize;
            let opcode = BthOpcode::send_for_position(index, total_pkts);
            let psn = (head.start_psn + index as u32) % PSN_MOD;
            let pkt = RdmaPacket {
                dest_qp: self.peer_qpn,
                src_qp: self.qpn,
                opcode,
                syndrome: AethSyndrome::Ack,
                psn,
                payload: chunk,
                wr_id: head.wr_id,
            };
            self.inflight.push_back(InflightPacket {
                psn,
                payload: chunk,
                opcode,
                wr_id: head.wr_id,
                sent_at: now,
            });
            self.sent_packets += 1;
            self.ctr.tx_packets.inc();
            out.push(pkt);
            head.sent += chunk;
            if opcode.is_last() {
                self.send_queue.pop_front();
            }
        }
        out
    }

    /// Handles an incoming packet addressed to this QP at `now`, returning
    /// events and any ACK/NAK packet to transmit back.
    pub fn on_packet(
        &mut self,
        now: SimTime,
        pkt: &RdmaPacket,
    ) -> (Vec<RdmaEvent>, Option<RdmaPacket>) {
        let mut events = Vec::new();
        if self.state == QpState::Error {
            return (events, None);
        }
        if pkt.opcode == BthOpcode::Ack {
            match pkt.syndrome {
                AethSyndrome::Ack => self.on_ack(pkt.psn, &mut events),
                AethSyndrome::RnrNak { .. } => {
                    self.naks_received += 1;
                    self.ctr.naks_received.inc();
                    self.rnr_naks_received += 1;
                    self.ctr.rnr_naks.inc();
                    if self.rnr_retries >= self.config.rnr_retry {
                        self.enter_error(&mut events);
                        return (events, None);
                    }
                    self.rnr_retries += 1;
                    // Everything before the rejected PSN was accepted.
                    self.ack_before(pkt.psn, &mut events);
                    // Back off for the responder's RNR timer, then
                    // go-back-N from the rejected PSN.
                    self.recover_at = Some(now + self.config.rnr_timer);
                }
                AethSyndrome::Nak(NakCode::PsnSequenceError) => {
                    self.naks_received += 1;
                    self.ctr.naks_received.inc();
                    if self.transport_retries >= self.config.retry_cnt {
                        self.enter_error(&mut events);
                        return (events, None);
                    }
                    self.transport_retries += 1;
                    self.ack_before(pkt.psn, &mut events);
                    // The responder told us exactly where the sequence
                    // broke: go-back-N immediately, no timer wait.
                    self.recover_at = Some(now);
                }
                AethSyndrome::Nak(_) => {
                    // Invalid request / access / operational errors are
                    // unrecoverable by retransmission (IBTA).
                    self.naks_received += 1;
                    self.ctr.naks_received.inc();
                    self.enter_error(&mut events);
                }
            }
            return (events, None);
        }
        // Responder path: strict PSN ordering (go-back-N).
        if pkt.psn != self.expected_psn {
            let behind = (self.expected_psn.wrapping_sub(pkt.psn)) % PSN_MOD;
            if behind != 0 && behind < PSN_MOD / 2 {
                // Duplicate of an already-received packet: the original ACK
                // may have been lost, so re-acknowledge the latest in-order
                // PSN (IBTA duplicate-request handling) — otherwise the
                // requester would retransmit until its retry budget
                // (`retry_cnt`) ran out and the QP failed needlessly.
                self.duplicate_acks += 1;
                self.ctr.duplicate_acks.inc();
                let ack_psn = (self.expected_psn + PSN_MOD - 1) % PSN_MOD;
                return (events, Some(self.make_ack(pkt.src_qp, ack_psn)));
            }
            // A gap (future packet): NAK the first missing PSN so the
            // requester can go-back-N without waiting out its timer —
            // one NAK per gap episode to avoid a NAK storm.
            self.out_of_window += 1;
            self.ctr.out_of_window.inc();
            if !self.nak_armed {
                self.nak_armed = true;
                self.naks_sent += 1;
                self.ctr.naks_sent.inc();
                let mut nak = self.make_ack(pkt.src_qp, self.expected_psn);
                nak.syndrome = AethSyndrome::Nak(NakCode::PsnSequenceError);
                return (events, Some(nak));
            }
            return (events, None);
        }
        self.nak_armed = false;
        self.expected_psn = (self.expected_psn + 1) % PSN_MOD;
        self.received_packets += 1;
        self.ctr.rx_packets.inc();
        self.recv_in_progress += pkt.payload;
        self.unacked_count += 1;
        events.push(RdmaEvent::RecvSegment {
            bytes: pkt.payload,
            src_qp: pkt.src_qp,
        });
        let mut ack = None;
        if pkt.opcode.is_last() {
            events.push(RdmaEvent::RecvComplete {
                bytes: self.recv_in_progress,
                src_qp: pkt.src_qp,
            });
            self.recv_in_progress = 0;
        }
        if pkt.opcode.is_last() || self.unacked_count >= self.config.ack_coalesce {
            self.unacked_count = 0;
            ack = Some(self.make_ack(pkt.src_qp, pkt.psn));
        }
        (events, ack)
    }

    /// Builds a positive ACK covering everything up to `psn`.
    fn make_ack(&self, dest_qp: u32, psn: u32) -> RdmaPacket {
        RdmaPacket {
            dest_qp,
            src_qp: self.qpn,
            opcode: BthOpcode::Ack,
            syndrome: AethSyndrome::Ack,
            psn,
            payload: 0,
            wr_id: 0,
        }
    }

    /// Responder-side RNR: rejects an in-order data packet because no
    /// receive WQE is available, producing the RNR NAK to send back.
    ///
    /// # Panics
    ///
    /// Panics if `pkt` is not the next expected packet (RNR is only
    /// meaningful for a request the responder would otherwise accept).
    pub fn make_rnr_nak(&mut self, pkt: &RdmaPacket) -> RdmaPacket {
        assert_eq!(
            pkt.psn, self.expected_psn,
            "RNR rejects the next expected request"
        );
        self.naks_sent += 1;
        self.ctr.naks_sent.inc();
        let mut nak = self.make_ack(pkt.src_qp, pkt.psn);
        // Timer code 14 ≈ 10 ms in IBTA encoding; the model's backoff is
        // the requester's configured `rnr_timer`.
        nak.syndrome = AethSyndrome::RnrNak { timer: 14 };
        nak
    }

    /// Budget exhaustion or an unrecoverable NAK: Error state, pending
    /// work fails.
    fn enter_error(&mut self, events: &mut Vec<RdmaEvent>) {
        self.state = QpState::Error;
        self.fatal_pending = true;
        self.recover_at = None;
        events.push(RdmaEvent::Fatal);
    }

    /// Processes a (possibly coalesced) ACK covering everything up to and
    /// including `psn`.
    fn on_ack(&mut self, psn: u32, events: &mut Vec<RdmaEvent>) {
        let before = self.inflight.len();
        while let Some(front) = self.inflight.front() {
            // Sequence-space comparison modulo 2^23.
            let diff = (psn.wrapping_sub(front.psn)) % PSN_MOD;
            if diff < PSN_MOD / 2 {
                let pkt = self.inflight.pop_front().expect("checked front");
                if pkt.opcode.is_last() {
                    events.push(RdmaEvent::SendComplete { wr_id: pkt.wr_id });
                }
            } else {
                break;
            }
        }
        // Forward progress clears the retry budgets (IBTA: the counters
        // bound retries *without progress*, not per connection lifetime).
        if self.inflight.len() != before {
            self.transport_retries = 0;
            self.rnr_retries = 0;
        }
        // A NAK-scheduled recovery is moot once everything it covered has
        // been acknowledged (e.g. by a duplicate ACK that outran the
        // go-back-N): leaving a past `recover_at` behind would make
        // `next_timeout` demand a poll that has nothing to retransmit,
        // re-arming the timer at the same instant forever.
        if self.inflight.is_empty() {
            self.recover_at = None;
        }
    }

    /// Acknowledges everything strictly before `psn` (NAK semantics: the
    /// AETH PSN names the first packet the responder did not accept).
    fn ack_before(&mut self, psn: u32, events: &mut Vec<RdmaEvent>) {
        let prev = (psn + PSN_MOD - 1) % PSN_MOD;
        if self
            .inflight
            .front()
            .is_some_and(|f| (prev.wrapping_sub(f.psn)) % PSN_MOD < PSN_MOD / 2)
        {
            self.on_ack(prev, events);
        }
    }

    /// Checks the retransmission machinery: go-back-N fires when the
    /// oldest in-flight packet has waited past the (exponentially backed
    /// off) timeout, or when a NAK scheduled an earlier recovery.
    ///
    /// Retries are budgeted: after `retry_cnt` consecutive timer firings
    /// without ACK progress the QP enters the error state and returns
    /// nothing — the storm is capped, and the owner observes
    /// [`RcQp::take_fatal`] / [`QpState::Error`].
    pub fn poll_timeout(&mut self, now: SimTime) -> Vec<RdmaPacket> {
        if self.state != QpState::ReadyToSend {
            return Vec::new();
        }
        if self.inflight.is_empty() {
            // Nothing to recover: drop any stale NAK-scheduled recovery so
            // `next_timeout` cannot keep requesting a same-instant poll.
            self.recover_at = None;
            return Vec::new();
        }
        let nak_recovery = self.recover_at.is_some_and(|t| t <= now);
        let timer_fired = self
            .inflight
            .front()
            .is_some_and(|p| now.saturating_since(p.sent_at) >= self.effective_timeout());
        if !nak_recovery && !timer_fired {
            return Vec::new();
        }
        self.recover_at = None;
        if !nak_recovery {
            // Timer-driven retries consume budget here; NAK-driven
            // recoveries were budgeted when the NAK arrived.
            if self.transport_retries >= self.config.retry_cnt {
                let mut events = Vec::new();
                self.enter_error(&mut events);
                return Vec::new();
            }
            self.transport_retries += 1;
            self.timeouts += 1;
            self.ctr.timeouts.inc();
        }
        self.retransmits += self.inflight.len() as u64;
        self.ctr.retransmits.add(self.inflight.len() as u64);
        self.sent_packets += self.inflight.len() as u64;
        self.ctr.tx_packets.add(self.inflight.len() as u64);
        self.inflight
            .iter_mut()
            .map(|p| {
                p.sent_at = now;
                RdmaPacket {
                    dest_qp: self.peer_qpn,
                    src_qp: self.qpn,
                    opcode: p.opcode,
                    syndrome: AethSyndrome::Ack,
                    psn: p.psn,
                    payload: p.payload,
                    wr_id: p.wr_id,
                }
            })
            .collect()
    }

    /// The retransmission timeout with exponential backoff: doubles per
    /// consecutive unanswered retry (capped) so a congested peer is not
    /// hammered at a fixed cadence.
    fn effective_timeout(&self) -> SimDuration {
        let shift = u32::from(self.transport_retries.min(6));
        SimDuration::from_picos(
            self.config
                .retransmit_timeout
                .as_picos()
                .saturating_mul(1u64 << shift),
        )
    }

    /// Earliest instant at which [`RcQp::poll_timeout`] could fire, for
    /// event scheduling.
    pub fn next_timeout(&self) -> Option<SimTime> {
        if self.state != QpState::ReadyToSend {
            return None;
        }
        let timer = self
            .inflight
            .front()
            .map(|p| p.sent_at + self.effective_timeout());
        match (self.recover_at, timer) {
            (Some(r), Some(t)) => Some(r.min(t)),
            (Some(r), None) => Some(r),
            (None, t) => t,
        }
    }
}

impl fld_sim::engine::Component for RcQp {
    /// One probe: packets currently in the transmit window
    /// (`"{name}.inflight_window"`).
    fn probes(
        &mut self,
        name: &str,
        _now: SimTime,
        _interval: SimDuration,
        out: &mut fld_sim::engine::Probes,
    ) {
        out.push(
            format!("{name}.inflight_window"),
            self.inflight_packets() as f64,
        );
    }

    /// Window-credit bound plus PSN monotonicity of both sequence
    /// counters.
    fn audit(&mut self, name: &str, at: SimTime, auditor: &mut fld_sim::audit::Auditor) {
        auditor.check_credits(
            at,
            &format!("{name}.inflight"),
            self.inflight_packets() as u64,
            self.window() as u64,
        );
        auditor.check_psn(at, &format!("{name}.next_psn"), u64::from(self.next_psn()));
        auditor.check_psn(
            at,
            &format!("{name}.expected_psn"),
            u64::from(self.expected_psn()),
        );
    }

    /// Exports `"{name}.retransmits"`, `"{name}.timeouts"`,
    /// `"{name}.naks_sent"` and `"{name}.naks_received"`.
    fn export_metrics(
        &self,
        name: &str,
        _end: SimTime,
        registry: &mut fld_sim::metrics::MetricsRegistry,
    ) {
        registry.counter(format!("{name}.retransmits"), self.retransmits());
        registry.counter(format!("{name}.timeouts"), self.timeouts());
        registry.counter(format!("{name}.naks_sent"), self.naks_sent());
        registry.counter(format!("{name}.naks_received"), self.naks_received());
        registry.counter(format!("{name}.out_of_window"), self.out_of_window());
        registry.counter(format!("{name}.duplicate_acks"), self.duplicate_acks());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (RcQp, RcQp) {
        let mut a = RcQp::new(100, QpConfig::default());
        let mut b = RcQp::new(200, QpConfig::default());
        a.connect(200);
        b.connect(100);
        (a, b)
    }

    /// Delivers packets between QPs until quiescent; returns events per side.
    fn run_lossless(a: &mut RcQp, b: &mut RcQp) -> (Vec<RdmaEvent>, Vec<RdmaEvent>) {
        let mut ev_a = Vec::new();
        let mut ev_b = Vec::new();
        let now = SimTime::ZERO;
        loop {
            let mut moved = false;
            for pkt in a.poll_transmit(now) {
                moved = true;
                let (evs, ack) = b.on_packet(now, &pkt);
                ev_b.extend(evs);
                if let Some(ack) = ack {
                    let (evs, _) = a.on_packet(now, &ack);
                    ev_a.extend(evs);
                }
            }
            for pkt in b.poll_transmit(now) {
                moved = true;
                let (evs, ack) = a.on_packet(now, &pkt);
                ev_a.extend(evs);
                if let Some(ack) = ack {
                    let (evs, _) = b.on_packet(now, &ack);
                    ev_b.extend(evs);
                }
            }
            if !moved {
                break;
            }
        }
        (ev_a, ev_b)
    }

    #[test]
    fn single_packet_message() {
        let (mut a, mut b) = pair();
        a.post_send(1, 512);
        let (ev_a, ev_b) = run_lossless(&mut a, &mut b);
        assert!(ev_a.contains(&RdmaEvent::SendComplete { wr_id: 1 }));
        assert!(ev_b.contains(&RdmaEvent::RecvComplete {
            bytes: 512,
            src_qp: 100
        }));
    }

    #[test]
    fn multi_packet_segmentation() {
        let (mut a, _b) = pair();
        a.post_send(7, 4096 + 100); // 5 packets at MTU 1024
        let pkts = a.poll_transmit(SimTime::ZERO);
        assert_eq!(pkts.len(), 5);
        assert_eq!(pkts[0].opcode, BthOpcode::SendFirst);
        assert_eq!(pkts[4].opcode, BthOpcode::SendLast);
        assert_eq!(pkts[4].payload, 100);
        assert!(pkts[1..4].iter().all(|p| p.opcode == BthOpcode::SendMiddle));
        // PSNs are consecutive.
        for (i, p) in pkts.iter().enumerate() {
            assert_eq!(p.psn, i as u32);
        }
    }

    #[test]
    fn message_larger_than_mtu_completes_once() {
        let (mut a, mut b) = pair();
        a.post_send(9, 10_000);
        let (ev_a, ev_b) = run_lossless(&mut a, &mut b);
        let completes: Vec<_> = ev_b
            .iter()
            .filter(|e| matches!(e, RdmaEvent::RecvComplete { .. }))
            .collect();
        assert_eq!(completes.len(), 1);
        assert!(matches!(
            completes[0],
            RdmaEvent::RecvComplete { bytes: 10_000, .. }
        ));
        assert_eq!(
            ev_a.iter()
                .filter(|e| matches!(e, RdmaEvent::SendComplete { .. }))
                .count(),
            1
        );
        // Incremental segments sum to the message size.
        let seg_sum: u32 = ev_b
            .iter()
            .filter_map(|e| match e {
                RdmaEvent::RecvSegment { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .sum();
        assert_eq!(seg_sum, 10_000);
    }

    #[test]
    fn multiple_messages_in_order() {
        let (mut a, mut b) = pair();
        for wr in 0..10 {
            a.post_send(wr, 2000);
        }
        let (ev_a, ev_b) = run_lossless(&mut a, &mut b);
        let sends: Vec<u64> = ev_a
            .iter()
            .filter_map(|e| match e {
                RdmaEvent::SendComplete { wr_id } => Some(*wr_id),
                _ => None,
            })
            .collect();
        assert_eq!(sends, (0..10).collect::<Vec<_>>());
        assert_eq!(
            ev_b.iter()
                .filter(|e| matches!(e, RdmaEvent::RecvComplete { .. }))
                .count(),
            10
        );
    }

    #[test]
    fn loss_recovered_by_timeout() {
        let (mut a, mut b) = pair();
        a.post_send(1, 3000); // 3 packets
        let mut pkts = a.poll_transmit(SimTime::ZERO);
        // Drop the middle packet.
        let dropped = pkts.remove(1);
        assert_eq!(dropped.psn, 1);
        let mut acks = Vec::new();
        for p in &pkts {
            let (_, ack) = b.on_packet(SimTime::ZERO, p);
            acks.extend(ack);
        }
        // The receiver must NOT complete (packet 2 arrived out of order and
        // was dropped).
        for ack in &acks {
            a.on_packet(SimTime::ZERO, ack);
        }
        // Fire the retransmit timer.
        let later = SimTime::ZERO + SimDuration::from_millis(1);
        let retrans = a.poll_timeout(later);
        assert!(!retrans.is_empty(), "timeout must retransmit");
        assert!(a.retransmits() > 0);
        let mut done = false;
        for p in retrans {
            let (evs, ack) = b.on_packet(later, &p);
            for e in evs {
                if matches!(e, RdmaEvent::RecvComplete { bytes: 3000, .. }) {
                    done = true;
                }
            }
            if let Some(ack) = ack {
                a.on_packet(later, &ack);
            }
        }
        assert!(done, "message must complete after retransmission");
        assert!(a.inflight.is_empty(), "all packets acknowledged");
    }

    #[test]
    fn window_limits_inflight() {
        let config = QpConfig {
            window: 4,
            ..QpConfig::default()
        };
        let mut a = RcQp::new(1, config);
        a.connect(2);
        a.post_send(1, 100 * 1024); // 100 packets
        let pkts = a.poll_transmit(SimTime::ZERO);
        assert_eq!(pkts.len(), 4, "window must cap transmissions");
        // No progress until ACKs arrive.
        assert!(a.poll_transmit(SimTime::ZERO).is_empty());
    }

    #[test]
    fn duplicate_packets_reacked_not_redelivered() {
        let (mut a, mut b) = pair();
        a.post_send(1, 100);
        let pkts = a.poll_transmit(SimTime::ZERO);
        let (ev1, ack1) = b.on_packet(SimTime::ZERO, &pkts[0]);
        assert!(!ev1.is_empty());
        assert!(ack1.is_some());
        let (ev2, ack2) = b.on_packet(SimTime::ZERO, &pkts[0]); // replay
        assert!(ev2.is_empty(), "duplicate must not be redelivered");
        // But it must be re-acknowledged in case the first ACK was lost.
        let ack2 = ack2.expect("duplicate triggers re-ack");
        assert_eq!(ack2.psn, pkts[0].psn);
        assert_eq!(b.received_packets(), 1);
    }

    #[test]
    fn error_state_is_quiescent() {
        let (mut a, mut b) = pair();
        a.post_send(1, 100);
        a.set_error();
        assert!(a.poll_transmit(SimTime::ZERO).is_empty());
        assert_eq!(a.state(), QpState::Error);
        b.set_error();
        let pkt = RdmaPacket {
            dest_qp: 200,
            src_qp: 100,
            opcode: BthOpcode::SendOnly,
            syndrome: AethSyndrome::Ack,
            psn: 0,
            payload: 10,
            wr_id: 0,
        };
        let (evs, ack) = b.on_packet(SimTime::ZERO, &pkt);
        assert!(evs.is_empty());
        assert!(ack.is_none());
    }

    #[test]
    #[should_panic]
    fn post_send_requires_rts() {
        let mut qp = RcQp::new(1, QpConfig::default());
        qp.post_send(0, 10);
    }

    #[test]
    fn frame_len_includes_roce_headers() {
        let pkt = RdmaPacket {
            dest_qp: 1,
            src_qp: 2,
            opcode: BthOpcode::SendOnly,
            syndrome: AethSyndrome::Ack,
            psn: 0,
            payload: 1024,
            wr_id: 0,
        };
        assert_eq!(pkt.frame_len(), 1024 + 58);
    }

    #[test]
    fn gap_triggers_one_nak_per_episode() {
        let (mut a, mut b) = pair();
        a.post_send(1, 3000); // 3 packets
        let mut pkts = a.poll_transmit(SimTime::ZERO);
        pkts.remove(1); // lose the middle packet
        let mut naks = Vec::new();
        for p in &pkts {
            let (_, resp) = b.on_packet(SimTime::ZERO, p);
            naks.extend(resp);
        }
        // Exactly one NAK for the gap, naming the first missing PSN.
        let nak = naks.last().expect("gap must be NAKed");
        assert_eq!(nak.syndrome, AethSyndrome::Nak(NakCode::PsnSequenceError));
        assert_eq!(nak.psn, 1);
        assert_eq!(b.naks_sent(), 1);
        // More out-of-order arrivals while the episode is open: no new NAK.
        let replay = RdmaPacket {
            psn: 2,
            ..*pkts.last().unwrap()
        };
        let (_, resp) = b.on_packet(SimTime::ZERO, &replay);
        assert!(resp.is_none(), "NAK storm must be suppressed");
        assert_eq!(b.naks_sent(), 1);
    }

    #[test]
    fn nak_recovers_without_waiting_for_timer() {
        let (mut a, mut b) = pair();
        a.post_send(1, 3000);
        let mut pkts = a.poll_transmit(SimTime::ZERO);
        pkts.remove(1);
        let mut naks = Vec::new();
        for p in &pkts {
            let (_, resp) = b.on_packet(SimTime::ZERO, p);
            naks.extend(resp);
        }
        let now = SimTime::from_nanos(500); // long before the 100 µs timer
        for nak in &naks {
            a.on_packet(now, nak);
        }
        assert_eq!(a.naks_received(), 1);
        // The NAK scheduled an immediate go-back-N.
        assert_eq!(a.next_timeout(), Some(now));
        let retrans = a.poll_timeout(now);
        assert!(!retrans.is_empty(), "NAK must trigger retransmission");
        assert_eq!(retrans[0].psn, 1, "go-back-N from the NAKed PSN");
        let mut done = false;
        for p in retrans {
            let (evs, ack) = b.on_packet(now, &p);
            done |= evs
                .iter()
                .any(|e| matches!(e, RdmaEvent::RecvComplete { bytes: 3000, .. }));
            if let Some(ack) = ack {
                a.on_packet(now, &ack);
            }
        }
        assert!(done);
        assert_eq!(a.timeouts(), 0, "the retransmit timer never fired");
    }

    #[test]
    fn retry_budget_exhaustion_enters_error() {
        let config = QpConfig {
            retry_cnt: 3,
            ..QpConfig::default()
        };
        let mut a = RcQp::new(1, config);
        a.connect(2);
        a.post_send(1, 100);
        assert_eq!(a.poll_transmit(SimTime::ZERO).len(), 1);
        // The peer never answers: fire the (backed-off) timer to exhaustion.
        let mut now = SimTime::ZERO;
        let mut fired = 0;
        for _ in 0..100 {
            match a.next_timeout() {
                Some(t) => now = t,
                None => break,
            }
            if !a.poll_timeout(now).is_empty() {
                fired += 1;
            }
        }
        assert_eq!(fired, 3, "retry budget caps the retransmit storm");
        assert_eq!(a.state(), QpState::Error);
        assert!(a.take_fatal(), "owner observes the failure exactly once");
        assert!(!a.take_fatal());
        assert_eq!(a.timeouts(), 3);
        assert!(a
            .poll_timeout(now + SimDuration::from_millis(10))
            .is_empty());
    }

    #[test]
    fn backoff_doubles_the_timeout() {
        let mut a = RcQp::new(1, QpConfig::default());
        a.connect(2);
        a.post_send(1, 100);
        a.poll_transmit(SimTime::ZERO);
        let first = a.next_timeout().unwrap();
        assert_eq!(first, SimTime::ZERO + SimDuration::from_micros(100));
        assert!(!a.poll_timeout(first).is_empty());
        // After one unanswered retry the timeout doubles.
        assert_eq!(
            a.next_timeout().unwrap(),
            first + SimDuration::from_micros(200)
        );
    }

    #[test]
    fn ack_progress_resets_retry_budget() {
        let config = QpConfig {
            retry_cnt: 2,
            ..QpConfig::default()
        };
        let mut a = RcQp::new(1, config);
        let mut b = RcQp::new(2, config);
        a.connect(2);
        b.connect(1);
        let mut now = SimTime::ZERO;
        // Each message: lose the first transmission, deliver the retry.
        for round in 0..5u64 {
            a.post_send(round, 100);
            let pkts = a.poll_transmit(now);
            assert_eq!(pkts.len(), 1, "round {round} must transmit");
            now = a.next_timeout().unwrap();
            let retrans = a.poll_timeout(now);
            assert_eq!(retrans.len(), 1, "round {round} must retry");
            for p in retrans {
                let (_, ack) = b.on_packet(now, &p);
                if let Some(ack) = ack {
                    a.on_packet(now, &ack);
                }
            }
        }
        // Five losses absorbed with a budget of two: progress resets it.
        assert_eq!(a.state(), QpState::ReadyToSend);
        assert_eq!(a.outstanding_sends(), 0);
        assert_eq!(a.timeouts(), 5);
    }

    #[test]
    fn rnr_nak_backs_off_and_retries() {
        let (mut a, mut b) = pair();
        a.post_send(1, 100);
        let pkts = a.poll_transmit(SimTime::ZERO);
        // Responder has no receive WQE: RNR NAK instead of accepting.
        let nak = b.make_rnr_nak(&pkts[0]);
        assert_eq!(nak.syndrome, AethSyndrome::RnrNak { timer: 14 });
        let now = SimTime::from_nanos(1000);
        a.on_packet(now, &nak);
        assert_eq!(a.rnr_naks_received(), 1);
        // Backoff: no retransmit until the RNR timer elapses.
        assert!(a.poll_timeout(now).is_empty());
        let resume = now + QpConfig::default().rnr_timer;
        assert_eq!(a.next_timeout(), Some(resume));
        let retrans = a.poll_timeout(resume);
        assert_eq!(retrans.len(), 1);
        // This time the responder accepts; the transfer completes.
        let (evs, ack) = b.on_packet(resume, &retrans[0]);
        assert!(evs
            .iter()
            .any(|e| matches!(e, RdmaEvent::RecvComplete { bytes: 100, .. })));
        let (evs, _) = a.on_packet(resume, &ack.unwrap());
        assert!(evs.contains(&RdmaEvent::SendComplete { wr_id: 1 }));
        assert_eq!(a.state(), QpState::ReadyToSend);
    }

    #[test]
    fn rnr_budget_exhaustion_enters_error() {
        let config = QpConfig {
            rnr_retry: 2,
            ..QpConfig::default()
        };
        let mut a = RcQp::new(1, config);
        let mut b = RcQp::new(2, config);
        a.connect(2);
        b.connect(1);
        a.post_send(1, 100);
        let pkts = a.poll_transmit(SimTime::ZERO);
        let mut now = SimTime::ZERO;
        // The responder keeps RNR-NAKing the same request.
        for _ in 0..=2 {
            let nak = b.make_rnr_nak(&pkts[0]);
            now += config.rnr_timer;
            a.on_packet(now, &nak);
            a.poll_timeout(a.next_timeout().unwrap_or(now));
        }
        assert_eq!(a.state(), QpState::Error);
        assert!(a.take_fatal());
        assert_eq!(a.rnr_naks_received(), 3);
    }

    #[test]
    fn remote_error_nak_is_terminal() {
        let (mut a, mut b) = pair();
        a.post_send(1, 100);
        let pkts = a.poll_transmit(SimTime::ZERO);
        let mut nak = b.make_rnr_nak(&pkts[0]);
        nak.syndrome = AethSyndrome::Nak(NakCode::RemoteOperationalError);
        let (evs, _) = a.on_packet(SimTime::from_nanos(10), &nak);
        assert!(evs.contains(&RdmaEvent::Fatal));
        assert_eq!(a.state(), QpState::Error);
        assert!(a.take_fatal());
    }

    /// Regression: a NAK schedules an immediate go-back-N (`recover_at =
    /// now`), but a duplicate ACK for the same PSN then empties the
    /// window before the recovery poll runs. The stale `recover_at` must
    /// be dropped — otherwise `next_timeout` demands a poll at the same
    /// instant forever (the owner re-arms its timer event at `now` in an
    /// infinite loop, observed as a livelock under duplication faults).
    #[test]
    fn acked_out_window_clears_pending_nak_recovery() {
        let (mut a, _b) = pair();
        a.post_send(1, 100);
        let pkts = a.poll_transmit(SimTime::ZERO);
        assert_eq!(pkts.len(), 1);
        let now = SimTime::from_nanos(10);
        let nak = RdmaPacket {
            dest_qp: 100,
            src_qp: 200,
            opcode: BthOpcode::Ack,
            syndrome: AethSyndrome::Nak(NakCode::PsnSequenceError),
            psn: 0,
            payload: 0,
            wr_id: 0,
        };
        a.on_packet(now, &nak);
        assert_eq!(a.next_timeout(), Some(now), "NAK schedules recovery");
        // A duplicated ACK (the original outran the go-back-N) drains the
        // whole window.
        let ack = RdmaPacket {
            syndrome: AethSyndrome::Ack,
            ..nak
        };
        a.on_packet(now, &ack);
        assert_eq!(a.state(), QpState::ReadyToSend);
        assert_eq!(
            a.next_timeout(),
            None,
            "empty window must not demand a recovery poll"
        );
        assert!(a.poll_timeout(now).is_empty());
    }

    /// The `qp/<qpn>/...` counter handles mirror the integer statistics
    /// exactly, including traffic counted before the QP was wired
    /// (backlog carry-over).
    #[test]
    fn qp_counters_mirror_the_integer_stats() {
        let (mut a, mut b) = pair();
        // Traffic before wiring: must be carried into the handles.
        a.post_send(1, 4096);
        run_lossless(&mut a, &mut b);

        let tree = CounterTree::new();
        a.wire_counters(&tree);
        b.wire_counters(&tree);

        a.post_send(2, 8192);
        run_lossless(&mut a, &mut b);

        for qp in [&a, &b] {
            let base = format!("qp/{}", qp.qpn());
            let get = |leaf: &str| tree.get(&format!("{base}/{leaf}")).unwrap();
            assert_eq!(get("tx_packets"), qp.sent_packets());
            assert_eq!(get("rx_packets"), qp.received_packets());
            assert_eq!(get("retransmits"), qp.retransmits());
            assert_eq!(get("timeouts"), qp.timeouts());
            assert_eq!(get("naks_sent"), qp.naks_sent());
            assert_eq!(get("naks_received"), qp.naks_received());
            assert_eq!(get("rnr_naks"), qp.rnr_naks_received());
            assert_eq!(get("out_of_window"), qp.out_of_window());
            assert_eq!(get("duplicate_acks"), qp.duplicate_acks());
        }
        assert!(tree.get("qp/100/tx_packets").unwrap() > 0);
    }
}
