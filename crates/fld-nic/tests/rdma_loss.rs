//! Failure injection for the RC transport: arbitrary loss patterns must
//! never break reliable, in-order, exactly-once message delivery.

use proptest::prelude::*;

use fld_net::roce::BthOpcode;
use fld_nic::rdma::{QpConfig, RcQp, RdmaEvent, RdmaPacket};
use fld_sim::time::{SimDuration, SimTime};

/// Runs a lossy bidirectional exchange to quiescence, dropping data and ACK
/// packets according to `drop_mask` bits, with timer-driven recovery.
/// Returns the receive-completed message sizes in order.
fn run_lossy(messages: &[u32], drop_mask: u128, window: usize) -> Vec<u32> {
    let config = QpConfig {
        mtu: 1024,
        window,
        retransmit_timeout: SimDuration::from_micros(50),
        ack_coalesce: 2,
        // This property examines transport reliability under arbitrary
        // loss, so give it budget to outlast the 128-bit drop mask;
        // budget *exhaustion* is covered by the unit tests.
        retry_cnt: 255,
        ..QpConfig::default()
    };
    let mut a = RcQp::new(1, config);
    let mut b = RcQp::new(2, config);
    a.connect(2);
    b.connect(1);
    for (i, &m) in messages.iter().enumerate() {
        a.post_send(i as u64, m);
    }
    let mut received = Vec::new();
    let mut now = SimTime::ZERO;
    let mut drop_idx = 0u32;
    // Bounded rounds: each round transmits, possibly drops, delivers, and
    // advances time past the retransmit timeout.
    for _round in 0..400 {
        let mut quiescent = true;
        let mut in_flight: Vec<RdmaPacket> = a.poll_transmit(now);
        in_flight.extend(a.poll_timeout(now));
        let mut acks: Vec<RdmaPacket> = Vec::new();
        for pkt in in_flight {
            quiescent = false;
            // Drop data packets per the mask (only the first 128 decisions
            // are masked; later transmissions always succeed so the run
            // terminates).
            let dropped = drop_idx < 128 && (drop_mask >> drop_idx) & 1 == 1;
            drop_idx += 1;
            if dropped {
                continue;
            }
            let (events, ack) = b.on_packet(now, &pkt);
            for ev in events {
                if let RdmaEvent::RecvComplete { bytes, .. } = ev {
                    received.push(bytes);
                }
            }
            acks.extend(ack);
        }
        for ack in acks {
            quiescent = false;
            let dropped = drop_idx < 128 && (drop_mask >> drop_idx) & 1 == 1;
            drop_idx += 1;
            if dropped {
                continue;
            }
            a.on_packet(now, &ack);
        }
        // Jump past the next (possibly backed-off) retransmission point so
        // every round either delivers or fires the timer.
        now = match a.next_timeout() {
            Some(t) if t > now => t,
            _ => now + SimDuration::from_micros(60),
        };
        if quiescent && a.outstanding_sends() == 0 {
            break;
        }
    }
    received
}

proptest! {
    /// Every message is delivered exactly once, in order, with its exact
    /// size — no matter which packets are lost.
    #[test]
    fn reliable_delivery_under_loss(
        messages in proptest::collection::vec(1u32..5000, 1..10),
        drop_mask: u128,
        window in 1usize..16,
    ) {
        let received = run_lossy(&messages, drop_mask, window);
        prop_assert_eq!(received, messages);
    }

    /// Zero loss means zero retransmissions (the timer must not misfire).
    #[test]
    fn no_spurious_retransmits(messages in proptest::collection::vec(1u32..5000, 1..10)) {
        let config = QpConfig::default();
        let mut a = RcQp::new(1, config);
        let mut b = RcQp::new(2, config);
        a.connect(2);
        b.connect(1);
        for (i, &m) in messages.iter().enumerate() {
            a.post_send(i as u64, m);
        }
        let now = SimTime::ZERO;
        loop {
            let pkts = a.poll_transmit(now);
            if pkts.is_empty() {
                break;
            }
            for pkt in pkts {
                let (_, ack) = b.on_packet(now, &pkt);
                if let Some(ack) = ack {
                    a.on_packet(now, &ack);
                }
            }
        }
        prop_assert_eq!(a.retransmits(), 0);
    }

    /// PSNs on the wire are strictly sequential per connection in a
    /// loss-free run.
    #[test]
    fn psn_sequence_is_dense(messages in proptest::collection::vec(1u32..4000, 1..8)) {
        let mut a = RcQp::new(1, QpConfig { window: 1024, ..QpConfig::default() });
        a.connect(2);
        for (i, &m) in messages.iter().enumerate() {
            a.post_send(i as u64, m);
        }
        let pkts = a.poll_transmit(SimTime::ZERO);
        for (i, p) in pkts.iter().enumerate() {
            prop_assert_eq!(p.psn, i as u32);
            prop_assert_ne!(p.opcode, BthOpcode::Ack);
        }
        let expected: u32 = messages.iter().map(|m| m.div_ceil(1024).max(1)).sum();
        prop_assert_eq!(pkts.len() as u32, expected);
    }
}
