fn main() {}
