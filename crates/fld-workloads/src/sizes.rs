//! Packet-size distributions.

use fld_sim::rng::SimRng;

/// A distribution over Ethernet frame sizes.
#[derive(Debug, Clone)]
pub enum SizeDist {
    /// Every frame has the same size.
    Fixed(u32),
    /// A weighted discrete mixture of `(frame_size, weight)`.
    Mixture(Vec<(u32, f64)>),
}

impl SizeDist {
    /// A synthetic stand-in for the IMC-2010 datacenter trace (Benson et
    /// al., reference 9 of the paper, used in § 8.1.1). The real trace is not redistributable;
    /// this mixture reproduces its qualitative shape — a bimodal
    /// distribution dominated by ACK-sized frames and MTU-sized frames —
    /// with a mean near 460 B, consistent with the packet rates the paper
    /// reports for the mixed-size echo experiment.
    pub fn imc2010_synthetic() -> SizeDist {
        SizeDist::Mixture(vec![
            (64, 0.50),
            (128, 0.08),
            (256, 0.08),
            (512, 0.08),
            (1024, 0.06),
            (1500, 0.20),
        ])
    }

    /// Draws one frame size.
    pub fn sample(&self, rng: &mut SimRng) -> u32 {
        match self {
            SizeDist::Fixed(s) => *s,
            SizeDist::Mixture(entries) => {
                let weights: Vec<f64> = entries.iter().map(|(_, w)| *w).collect();
                entries[rng.pick_weighted(&weights)].0
            }
        }
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        match self {
            SizeDist::Fixed(s) => *s as f64,
            SizeDist::Mixture(entries) => {
                let total: f64 = entries.iter().map(|(_, w)| w).sum();
                entries.iter().map(|(s, w)| *s as f64 * w).sum::<f64>() / total
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_always_returns_the_size() {
        let mut rng = SimRng::seed_from(1);
        let d = SizeDist::Fixed(777);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 777);
        }
        assert_eq!(d.mean(), 777.0);
    }

    #[test]
    fn mixture_sample_mean_converges() {
        let mut rng = SimRng::seed_from(2);
        let d = SizeDist::imc2010_synthetic();
        let n = 200_000;
        let total: u64 = (0..n).map(|_| d.sample(&mut rng) as u64).sum();
        let emp = total as f64 / n as f64;
        assert!(
            (emp - d.mean()).abs() / d.mean() < 0.02,
            "mean {emp} vs {}",
            d.mean()
        );
    }

    #[test]
    fn imc_mixture_is_bimodal() {
        let d = SizeDist::imc2010_synthetic();
        let m = d.mean();
        assert!((400.0..520.0).contains(&m), "mean {m}");
        if let SizeDist::Mixture(e) = &d {
            let small: f64 = e.iter().filter(|(s, _)| *s <= 128).map(|(_, w)| w).sum();
            let large: f64 = e.iter().filter(|(s, _)| *s >= 1024).map(|(_, w)| w).sum();
            assert!(small > 0.4);
            assert!(large > 0.2);
        } else {
            panic!("expected mixture");
        }
    }

    #[test]
    fn mixture_respects_support() {
        let mut rng = SimRng::seed_from(3);
        let d = SizeDist::imc2010_synthetic();
        let allowed = [64, 128, 256, 512, 1024, 1500];
        for _ in 0..10_000 {
            assert!(allowed.contains(&d.sample(&mut rng)));
        }
    }
}
