//! # fld-workloads — traffic generators for the FlexDriver experiments
//!
//! Builders for every workload the paper's evaluation uses:
//!
//! * [`sizes`] — packet-size distributions, including a synthetic mixture
//!   fit to the IMC-2010 datacenter trace (§ 8.1.1) that we cannot
//!   redistribute;
//! * [`gen`] — burst builders pluggable into
//!   [`fld_core::system::ClientGen`]: fixed-size UDP, mixed-size traces,
//!   multi-flow iperf-style TCP load with optional IP fragmentation and
//!   VXLAN tunneling (§ 8.2.2), and multi-tenant CoAP token traffic
//!   (§ 8.2.3);
//! * [`trace`] — packet-trace file replay, so a real IMC-2010-style trace
//!   can replace the synthetic stand-in when available;
//! * [`churn`] — open-loop Poisson connection churn for the rack-scale
//!   multi-tenant experiments.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod churn;
pub mod gen;
pub mod sizes;
pub mod trace;

pub use churn::{ChurnConfig, ChurnFlow, ChurnProcess};
pub use gen::{defrag_bursts, fixed_udp_bursts, mixed_size_bursts, tenant_bursts, DefragMode};
pub use sizes::SizeDist;
pub use trace::PacketTrace;
