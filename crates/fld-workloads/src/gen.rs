//! Burst builders for [`fld_core::system::ClientGen`].

use bytes::Bytes;

use fld_core::system::BurstBuilder;
use fld_net::frame::{build_tcp_frame, fragment_frame, vxlan_encap, Endpoints};
use fld_net::{FlowKey, Ipv4Addr};
use fld_nic::packet::SimPacket;
use fld_sim::time::SimTime;

use crate::sizes::SizeDist;

/// Fixed-size UDP frames spread over `flows` source ports.
pub fn fixed_udp_bursts(frame_len: u32, flows: u16) -> BurstBuilder {
    Box::new(move |i, _rng, out| {
        let flow = FlowKey::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1000 + (i % flows as u64) as u16,
            7777,
            17,
        );
        out.push(SimPacket::synthetic(i, frame_len, flow, SimTime::ZERO));
    })
}

/// Mixed-size frames drawn from `dist` (the § 8.1.1 trace replay).
pub fn mixed_size_bursts(dist: SizeDist, flows: u16) -> BurstBuilder {
    Box::new(move |i, rng, out| {
        let len = dist.sample(rng);
        let flow = FlowKey::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1000 + (i % flows as u64) as u16,
            7777,
            17,
        );
        out.push(SimPacket::synthetic(i, len.max(64), flow, SimTime::ZERO));
    })
}

/// How the § 8.2.2 sender prepares each MTU-sized TCP segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefragMode {
    /// Config (a): 1500 B packets, no fragmentation.
    NoFragmentation,
    /// Config (b): fragmented over a 1450 B-MTU route.
    Fragmented {
        /// Path MTU causing fragmentation.
        mtu: usize,
    },
    /// Config (c): pre-fragmented then VXLAN-encapsulated.
    FragmentedVxlan {
        /// Path MTU causing fragmentation.
        mtu: usize,
        /// Tunnel network id.
        vni: u32,
    },
}

/// iperf-style load: `flows` long-lived TCP flows between one host pair,
/// emitting 1500 B frames round-robin, prepared per `mode`. Bursts carry
/// real bytes so the defragmentation path is exercised functionally.
pub fn defrag_bursts(flows: u16, mode: DefragMode) -> BurstBuilder {
    let ep = Endpoints::sim(1, 2);
    let outer = Endpoints::sim(100, 101);
    // 1500 B IP packet: 1446 B of TCP payload (20 IP + 20 TCP + 14 Eth).
    let payload = vec![0xa5u8; 1446];
    Box::new(move |i, _rng, out| {
        let flow_idx = (i % flows as u64) as u16;
        let src_port = 40_000 + flow_idx;
        let seq = (i / flows as u64) as u32;
        let frame = build_tcp_frame(&ep, src_port, 5201, seq, &payload);
        let frames: Vec<Bytes> = match mode {
            DefragMode::NoFragmentation => vec![frame],
            DefragMode::Fragmented { mtu } => {
                fragment_frame(&frame, mtu, i as u16).expect("valid frame")
            }
            DefragMode::FragmentedVxlan { mtu, vni } => {
                // Pre-fragmentation: fragment the inner packet first, then
                // encapsulate each fragment (§ 7: "fragmenting packets
                // before encapsulation ... to reduce the load on the
                // decapsulating endpoint").
                fragment_frame(&frame, mtu, i as u16)
                    .expect("valid frame")
                    .into_iter()
                    .map(|f| vxlan_encap(&outer, vni, &f, 30_000 + flow_idx))
                    .collect()
            }
        };
        out.extend(
            frames
                .into_iter()
                .enumerate()
                .map(|(j, f)| SimPacket::from_frame(i * 8 + j as u64, f, SimTime::ZERO)),
        );
    })
}

/// Multi-tenant token traffic for § 8.2.3: synthetic frames of `frame_len`
/// from `tenants` sources, weighted by `weights` (offered-load shares).
/// The NIC's match-action rules map source IPs `10.9.0.<t>` to tenant
/// contexts.
pub fn tenant_bursts(frame_len: u32, weights: Vec<f64>) -> BurstBuilder {
    Box::new(move |i, rng, out| {
        let tenant = rng.pick_weighted(&weights) as u32;
        let flow = FlowKey::new(
            Ipv4Addr::new(10, 9, 0, tenant as u8 + 1),
            Ipv4Addr::new(10, 0, 0, 2),
            2000 + (i % 16) as u16,
            5683,
            17,
        );
        out.push(SimPacket::synthetic(i, frame_len, flow, SimTime::ZERO));
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fld_sim::rng::SimRng;

    /// Collects one burst from a builder (tests only; the generator
    /// itself recycles a scratch buffer).
    fn collect_burst(b: &mut BurstBuilder, i: u64, rng: &mut SimRng) -> Vec<SimPacket> {
        let mut v = Vec::new();
        b(i, rng, &mut v);
        v
    }

    #[test]
    fn fixed_udp_single_packets() {
        let mut b = fixed_udp_bursts(256, 4);
        let mut rng = SimRng::seed_from(1);
        let burst = collect_burst(&mut b, 0, &mut rng);
        assert_eq!(burst.len(), 1);
        assert_eq!(burst[0].len, 256);
        // Flows rotate.
        let p0 = collect_burst(&mut b, 0, &mut rng)[0].meta.flow.src_port;
        let p1 = collect_burst(&mut b, 1, &mut rng)[0].meta.flow.src_port;
        assert_ne!(p0, p1);
    }

    #[test]
    fn mixed_sizes_vary() {
        let mut b = mixed_size_bursts(SizeDist::imc2010_synthetic(), 8);
        let mut rng = SimRng::seed_from(2);
        let sizes: std::collections::HashSet<u32> = (0..200)
            .map(|i| collect_burst(&mut b, i, &mut rng)[0].len)
            .collect();
        assert!(sizes.len() >= 4, "sizes {sizes:?}");
    }

    #[test]
    fn defrag_none_is_single_frame() {
        let mut b = defrag_bursts(60, DefragMode::NoFragmentation);
        let mut rng = SimRng::seed_from(3);
        let burst = collect_burst(&mut b, 0, &mut rng);
        assert_eq!(burst.len(), 1);
        assert_eq!(burst[0].len, 1500);
        assert!(!burst[0].meta.is_fragment);
        assert_eq!(burst[0].meta.flow.dst_port, 5201);
    }

    #[test]
    fn defrag_fragments_at_mtu() {
        let mut b = defrag_bursts(60, DefragMode::Fragmented { mtu: 1450 });
        let mut rng = SimRng::seed_from(4);
        let burst = collect_burst(&mut b, 0, &mut rng);
        assert_eq!(burst.len(), 2, "1500 B over 1450 MTU = 2 fragments");
        assert!(burst.iter().all(|p| p.meta.is_fragment));
        assert!(burst.iter().all(|p| p.len as usize <= 14 + 1450));
        // Fragments lack L4 ports -> flow key collapses.
        assert_eq!(burst[1].meta.flow.dst_port, 0);
    }

    #[test]
    fn defrag_vxlan_wraps_fragments() {
        let mut b = defrag_bursts(60, DefragMode::FragmentedVxlan { mtu: 1450, vni: 42 });
        let mut rng = SimRng::seed_from(5);
        let burst = collect_burst(&mut b, 0, &mut rng);
        assert_eq!(burst.len(), 2);
        for p in &burst {
            assert_eq!(p.meta.vni_u32(), Some(42), "outer VXLAN visible");
            assert!(!p.meta.is_fragment, "outer packet is not fragmented");
        }
    }

    #[test]
    fn tenant_shares_follow_weights() {
        let mut b = tenant_bursts(1024, vec![1.0, 2.0]);
        let mut rng = SimRng::seed_from(6);
        let mut counts = [0u32; 2];
        for i in 0..30_000 {
            let p = &collect_burst(&mut b, i, &mut rng)[0];
            let tenant = p.meta.flow.src.octets()[3] - 1;
            counts[tenant as usize] += 1;
        }
        let share = counts[1] as f64 / 30_000.0;
        assert!((share - 2.0 / 3.0).abs() < 0.02, "share {share}");
    }

    #[test]
    fn flows_cycle_over_all_sources() {
        let mut b = defrag_bursts(60, DefragMode::NoFragmentation);
        let mut rng = SimRng::seed_from(7);
        let ports: std::collections::HashSet<u16> = (0..60)
            .map(|i| collect_burst(&mut b, i, &mut rng)[0].meta.flow.src_port)
            .collect();
        assert_eq!(ports.len(), 60);
    }
}
