//! Packet-trace replay.
//!
//! The paper's mixed-size experiment replays the IMC-2010 datacenter trace
//! (the paper's reference 9), which is not redistributable — `SizeDist::imc2010_synthetic()`
//! stands in for it. Users who *do* hold a trace can replay it directly:
//! this module loads a simple one-frame-size-per-line text format and
//! turns it into a generator, so the substitution disappears the moment
//! real data is available.

use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use fld_core::system::BurstBuilder;
use fld_net::{FlowKey, Ipv4Addr};
use fld_nic::packet::SimPacket;
use fld_sim::time::SimTime;

/// A loaded packet-size trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketTrace {
    sizes: Vec<u32>,
}

/// An error loading a trace.
#[derive(Debug)]
pub enum LoadTraceError {
    /// I/O failure.
    Io(std::io::Error),
    /// A line that is neither a comment nor a frame size.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// The trace contains no packets.
    Empty,
}

impl fmt::Display for LoadTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadTraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            LoadTraceError::BadLine { line, content } => {
                write!(f, "trace line {line} is not a frame size: {content:?}")
            }
            LoadTraceError::Empty => write!(f, "trace contains no packets"),
        }
    }
}

impl std::error::Error for LoadTraceError {}

impl From<std::io::Error> for LoadTraceError {
    fn from(e: std::io::Error) -> Self {
        LoadTraceError::Io(e)
    }
}

impl PacketTrace {
    /// Builds a trace from sizes in memory.
    ///
    /// # Panics
    ///
    /// Panics if `sizes` is empty.
    pub fn from_sizes(sizes: Vec<u32>) -> Self {
        assert!(!sizes.is_empty(), "trace cannot be empty");
        PacketTrace { sizes }
    }

    /// Parses the text format from any reader: one frame size per line;
    /// blank lines and `#` comments ignored.
    ///
    /// # Errors
    ///
    /// See [`LoadTraceError`].
    pub fn read<R: Read>(reader: R) -> Result<Self, LoadTraceError> {
        let mut sizes = Vec::new();
        for (i, line) in BufReader::new(reader).lines().enumerate() {
            let line = line?;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let size: u32 = trimmed.parse().map_err(|_| LoadTraceError::BadLine {
                line: i + 1,
                content: trimmed.to_string(),
            })?;
            sizes.push(size.max(64));
        }
        if sizes.is_empty() {
            return Err(LoadTraceError::Empty);
        }
        Ok(PacketTrace { sizes })
    }

    /// Loads the text format from a file.
    ///
    /// # Errors
    ///
    /// See [`LoadTraceError`].
    pub fn load(path: &Path) -> Result<Self, LoadTraceError> {
        Self::read(std::fs::File::open(path)?)
    }

    /// Writes the text format (a header comment plus one size per line).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write<W: Write>(&self, mut writer: W) -> std::io::Result<()> {
        writeln!(
            writer,
            "# packet trace: {} frames, mean {:.1} B",
            self.len(),
            self.mean()
        )?;
        for s in &self.sizes {
            writeln!(writer, "{s}")?;
        }
        Ok(())
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// Whether the trace is empty (never true for constructed traces).
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Mean frame size.
    pub fn mean(&self) -> f64 {
        self.sizes.iter().map(|&s| s as u64).sum::<u64>() as f64 / self.sizes.len() as f64
    }

    /// The sizes.
    pub fn sizes(&self) -> &[u32] {
        &self.sizes
    }

    /// Converts into a burst builder replaying the trace cyclically across
    /// `flows` source ports.
    pub fn into_bursts(self, flows: u16) -> BurstBuilder {
        let flows = flows.max(1);
        Box::new(move |i, _rng, out| {
            let len = self.sizes[(i % self.sizes.len() as u64) as usize];
            let flow = FlowKey::new(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(10, 0, 0, 2),
                1000 + (i % flows as u64) as u16,
                7777,
                17,
            );
            out.push(SimPacket::synthetic(i, len, flow, SimTime::ZERO));
        })
    }

    /// Synthesizes a trace of `n` frames by sampling a [`crate::SizeDist`]
    /// — the bridge from the synthetic stand-in to the file format.
    pub fn synthesize(dist: &crate::SizeDist, n: usize, seed: u64) -> Self {
        let mut rng = fld_sim::rng::SimRng::seed_from(seed);
        PacketTrace::from_sizes((0..n.max(1)).map(|_| dist.sample(&mut rng)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Collects one burst from a builder (tests only).
    fn collect_burst(
        b: &mut BurstBuilder,
        i: u64,
        rng: &mut fld_sim::rng::SimRng,
    ) -> Vec<SimPacket> {
        let mut v = Vec::new();
        b(i, rng, &mut v);
        v
    }
    use crate::SizeDist;

    #[test]
    fn text_format_round_trips() {
        let trace = PacketTrace::from_sizes(vec![64, 1500, 256, 9000]);
        let mut buf = Vec::new();
        trace.write(&mut buf).unwrap();
        let loaded = PacketTrace::read(buf.as_slice()).unwrap();
        assert_eq!(loaded, trace);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# header\n\n64\n  128  \n# mid comment\n1500\n";
        let trace = PacketTrace::read(text.as_bytes()).unwrap();
        assert_eq!(trace.sizes(), &[64, 128, 1500]);
    }

    #[test]
    fn bad_lines_reported_with_position() {
        let text = "64\nnot-a-number\n";
        match PacketTrace::read(text.as_bytes()) {
            Err(LoadTraceError::BadLine { line, content }) => {
                assert_eq!(line, 2);
                assert_eq!(content, "not-a-number");
            }
            other => panic!("expected BadLine, got {other:?}"),
        }
    }

    #[test]
    fn empty_rejected() {
        assert!(matches!(
            PacketTrace::read("# nothing\n".as_bytes()),
            Err(LoadTraceError::Empty)
        ));
    }

    #[test]
    fn tiny_frames_clamped_to_minimum() {
        let trace = PacketTrace::read("1\n".as_bytes()).unwrap();
        assert_eq!(trace.sizes(), &[64]);
    }

    #[test]
    fn file_round_trip() {
        let path = std::env::temp_dir().join(format!("fld_trace_test_{}.txt", std::process::id()));
        let trace = PacketTrace::from_sizes(vec![100, 200, 300]);
        trace.write(std::fs::File::create(&path).unwrap()).unwrap();
        let loaded = PacketTrace::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded, trace);
    }

    #[test]
    fn bursts_replay_cyclically() {
        let mut b = PacketTrace::from_sizes(vec![64, 1500]).into_bursts(4);
        let mut rng = fld_sim::rng::SimRng::seed_from(1);
        assert_eq!(collect_burst(&mut b, 0, &mut rng)[0].len, 64);
        assert_eq!(collect_burst(&mut b, 1, &mut rng)[0].len, 1500);
        assert_eq!(collect_burst(&mut b, 2, &mut rng)[0].len, 64);
    }

    #[test]
    fn synthesize_matches_distribution() {
        let dist = SizeDist::imc2010_synthetic();
        let trace = PacketTrace::synthesize(&dist, 100_000, 7);
        assert_eq!(trace.len(), 100_000);
        assert!((trace.mean() - dist.mean()).abs() / dist.mean() < 0.02);
    }
}
