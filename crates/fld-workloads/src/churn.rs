//! Open-loop connection churn: Poisson arrivals and departures of
//! tenant flows.
//!
//! The rack experiments model "millions of users" not as millions of
//! packets from one flow but as a *churning population*: new tenant
//! connections arrive as a Poisson process, live an exponential
//! lifetime, and depart, while each tenant's offered load is spread over
//! whatever flows it has active at the moment. [`ChurnProcess`] owns
//! that population deterministically — every draw comes from the caller's
//! seeded [`SimRng`], active flows live in `Vec`s (no map-iteration
//! order anywhere), and ids are dense and reproducible — so a seeded
//! rack run replays byte-identically.

use fld_sim::rng::SimRng;
use fld_sim::time::SimDuration;

/// One live tenant connection: where its packets originate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnFlow {
    /// Dense flow id (unique over the run, never reused).
    pub id: u64,
    /// Owning tenant.
    pub tenant: u16,
    /// Node whose uplink the flow's packets enter the fabric through.
    pub src_node: u16,
    /// UDP source port distinguishing the flow inside its tenant.
    pub src_port: u16,
}

/// Churn parameters.
#[derive(Debug, Clone, Copy)]
pub struct ChurnConfig {
    /// Tenant population.
    pub tenants: u16,
    /// Nodes flows may originate from.
    pub nodes: u16,
    /// Flow arrivals per second of simulated time (Poisson). Zero
    /// disables churn: the initial population lives forever.
    pub arrival_rate: f64,
    /// Mean exponential flow lifetime.
    pub mean_lifetime: SimDuration,
    /// Flows seeded per tenant before the run starts (so no tenant ever
    /// measures with an empty population).
    pub initial_per_tenant: usize,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            tenants: 8,
            nodes: 4,
            arrival_rate: 20_000.0,
            mean_lifetime: SimDuration::from_millis(5),
            initial_per_tenant: 4,
        }
    }
}

/// The deterministic churning flow population (see the module docs).
#[derive(Debug)]
pub struct ChurnProcess {
    cfg: ChurnConfig,
    /// Active flows, in arrival order. Departure swaps-removes; picks
    /// index directly — no ordering-sensitive map anywhere.
    active: Vec<ChurnFlow>,
    /// Active-flow count per tenant (index = tenant id).
    per_tenant: Vec<u32>,
    /// True while the node is crashed: its flows are killed and no new
    /// flow may originate there (index = node id).
    down: Vec<bool>,
    next_id: u64,
    next_port: u16,
    arrivals: u64,
    departures: u64,
}

impl ChurnProcess {
    /// Seeds `initial_per_tenant` flows for every tenant, drawing source
    /// nodes from `rng`.
    pub fn new(cfg: ChurnConfig, rng: &mut SimRng) -> ChurnProcess {
        assert!(cfg.tenants > 0 && cfg.nodes > 0, "empty topology");
        let mut p = ChurnProcess {
            cfg,
            active: Vec::new(),
            per_tenant: vec![0; cfg.tenants as usize],
            down: vec![false; cfg.nodes as usize],
            next_id: 0,
            next_port: 20_000,
            arrivals: 0,
            departures: 0,
        };
        for tenant in 0..cfg.tenants {
            for _ in 0..cfg.initial_per_tenant {
                p.spawn(tenant, rng);
            }
        }
        p
    }

    fn spawn(&mut self, tenant: u16, rng: &mut SimRng) -> ChurnFlow {
        // Draw among live nodes only. With nothing down this is one
        // next_below(nodes) mapping to itself — the exact draw pattern
        // from before node-liveness existed, so seeded replays hold.
        let live = self.down.iter().filter(|&&d| !d).count() as u64;
        let src_node = if live == 0 {
            // Whole rack down: place the flow anywhere — it cannot send
            // until some node recovers regardless.
            rng.next_below(self.cfg.nodes as u64) as u16
        } else {
            let nth = rng.next_below(live) as usize;
            self.down
                .iter()
                .enumerate()
                .filter(|(_, &d)| !d)
                .nth(nth)
                .map(|(n, _)| n as u16)
                .unwrap_or(0)
        };
        self.spawn_at(tenant, src_node)
    }

    /// Admits a flow pinned to `src_node` (no RNG draw) — the node_up
    /// re-establishment path.
    fn spawn_at(&mut self, tenant: u16, src_node: u16) -> ChurnFlow {
        let flow = ChurnFlow {
            id: self.next_id,
            tenant,
            src_node,
            src_port: self.next_port,
        };
        self.next_id += 1;
        self.next_port = self.next_port.wrapping_add(1).max(1024);
        self.per_tenant[tenant as usize] += 1;
        self.active.push(flow);
        flow
    }

    /// A node crashed: every flow sourced there dies immediately (even a
    /// tenant's last — the node is gone) and [`ChurnProcess::spawn`]
    /// avoids it until [`ChurnProcess::node_up`]. Returns flows killed.
    pub fn node_down(&mut self, node: u16) -> u64 {
        if let Some(d) = self.down.get_mut(node as usize) {
            *d = true;
        }
        let mut killed = 0;
        let mut i = 0;
        while i < self.active.len() {
            if self.active[i].src_node == node {
                let tenant = self.active[i].tenant as usize;
                self.per_tenant[tenant] -= 1;
                self.active.swap_remove(i);
                killed += 1;
            } else {
                i += 1;
            }
        }
        killed
    }

    /// The node recovered: new flows may originate there again, and one
    /// flow per tenant is re-established on it immediately so the node
    /// rejoins the population without waiting for Poisson arrivals.
    /// Returns flows re-established.
    pub fn node_up(&mut self, node: u16) -> u64 {
        if let Some(d) = self.down.get_mut(node as usize) {
            *d = false;
        }
        let mut revived = 0;
        for tenant in 0..self.cfg.tenants {
            self.spawn_at(tenant, node);
            revived += 1;
        }
        revived
    }

    /// Active flows sourced at `node`.
    pub fn active_on(&self, node: u16) -> usize {
        self.active.iter().filter(|f| f.src_node == node).count()
    }

    /// Time until the next Poisson arrival, or `None` when churn is
    /// disabled (`arrival_rate == 0`).
    pub fn next_arrival_gap(&mut self, rng: &mut SimRng) -> Option<SimDuration> {
        if self.cfg.arrival_rate <= 0.0 {
            return None;
        }
        let mean = SimDuration::from_secs_f64(1.0 / self.cfg.arrival_rate);
        Some(rng.exp_duration(mean))
    }

    /// Admits one arriving flow for a uniformly random tenant and draws
    /// its exponential lifetime; the caller schedules the departure.
    pub fn arrive(&mut self, rng: &mut SimRng) -> (ChurnFlow, SimDuration) {
        let tenant = rng.next_below(self.cfg.tenants as u64) as u16;
        let flow = self.spawn(tenant, rng);
        self.arrivals += 1;
        (flow, rng.exp_duration(self.cfg.mean_lifetime))
    }

    /// Retires flow `id`. Idempotent (a flow seeded at start has no
    /// departure scheduled; a departure racing a restart is ignored).
    /// A tenant's last flow never departs — every tenant keeps at least
    /// one live connection so its offered load stays well-defined.
    pub fn depart(&mut self, id: u64) -> bool {
        let Some(i) = self.active.iter().position(|f| f.id == id) else {
            return false;
        };
        let tenant = self.active[i].tenant as usize;
        if self.per_tenant[tenant] <= 1 {
            return false;
        }
        self.per_tenant[tenant] -= 1;
        self.active.swap_remove(i);
        self.departures += 1;
        true
    }

    /// Picks a uniformly random active flow of `tenant` for its next
    /// packet. `None` only for a tenant outside the configured range.
    pub fn pick(&self, tenant: u16, rng: &mut SimRng) -> Option<ChurnFlow> {
        let count = *self.per_tenant.get(tenant as usize)? as u64;
        if count == 0 {
            return None;
        }
        let nth = rng.next_below(count);
        self.active
            .iter()
            .filter(|f| f.tenant == tenant)
            .nth(nth as usize)
            .copied()
    }

    /// Currently active flows.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Active flows of one tenant.
    pub fn tenant_active(&self, tenant: u16) -> u32 {
        self.per_tenant.get(tenant as usize).copied().unwrap_or(0)
    }

    /// Flows admitted over the run (beyond the initial population).
    pub fn arrivals(&self) -> u64 {
        self.arrivals
    }

    /// Flows retired over the run.
    pub fn departures(&self) -> u64 {
        self.departures
    }
}

/// A churning population drives a rack directly. Methods call the
/// inherent implementations explicitly: the trait speaks fld-core's
/// [`TenantFlow`](fld_core::rack::TenantFlow) while the inherent API
/// returns [`ChurnFlow`] (same fields — the conversion is a field copy).
impl fld_core::rack::FlowPopulation for ChurnProcess {
    fn next_arrival_gap(&mut self, rng: &mut SimRng) -> Option<SimDuration> {
        ChurnProcess::next_arrival_gap(self, rng)
    }

    fn arrive(&mut self, rng: &mut SimRng) -> Option<(fld_core::rack::TenantFlow, SimDuration)> {
        let (flow, life) = ChurnProcess::arrive(self, rng);
        Some((tenant_flow(flow), life))
    }

    fn depart(&mut self, id: u64) -> bool {
        ChurnProcess::depart(self, id)
    }

    fn pick(&self, tenant: u16, rng: &mut SimRng) -> Option<fld_core::rack::TenantFlow> {
        ChurnProcess::pick(self, tenant, rng).map(tenant_flow)
    }

    fn active_count(&self) -> usize {
        ChurnProcess::active_count(self)
    }

    fn arrivals(&self) -> u64 {
        ChurnProcess::arrivals(self)
    }

    fn departures(&self) -> u64 {
        ChurnProcess::departures(self)
    }

    fn node_down(&mut self, node: u16) -> u64 {
        ChurnProcess::node_down(self, node)
    }

    fn node_up(&mut self, node: u16, _rng: &mut SimRng) -> u64 {
        ChurnProcess::node_up(self, node)
    }

    fn active_on(&self, node: u16) -> usize {
        ChurnProcess::active_on(self, node)
    }
}

fn tenant_flow(f: ChurnFlow) -> fld_core::rack::TenantFlow {
    fld_core::rack::TenantFlow {
        id: f.id,
        tenant: f.tenant,
        src_node: f.src_node,
        src_port: f.src_port,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ChurnConfig {
        ChurnConfig {
            tenants: 4,
            nodes: 3,
            arrival_rate: 1_000.0,
            mean_lifetime: SimDuration::from_millis(1),
            initial_per_tenant: 2,
        }
    }

    #[test]
    fn seeds_initial_population() {
        let mut rng = SimRng::seed_from(1);
        let p = ChurnProcess::new(cfg(), &mut rng);
        assert_eq!(p.active_count(), 8);
        for t in 0..4 {
            assert_eq!(p.tenant_active(t), 2);
        }
    }

    #[test]
    fn arrivals_and_departures_conserve_population() {
        let mut rng = SimRng::seed_from(2);
        let mut p = ChurnProcess::new(cfg(), &mut rng);
        let (flow, life) = p.arrive(&mut rng);
        assert!(life > SimDuration::ZERO);
        assert_eq!(p.active_count(), 9);
        assert!(p.depart(flow.id));
        assert!(!p.depart(flow.id), "departure is idempotent");
        assert_eq!(p.active_count(), 8);
        assert_eq!(p.arrivals(), 1);
        assert_eq!(p.departures(), 1);
    }

    #[test]
    fn last_flow_of_a_tenant_never_departs() {
        let mut rng = SimRng::seed_from(3);
        let mut p = ChurnProcess::new(
            ChurnConfig {
                initial_per_tenant: 1,
                ..cfg()
            },
            &mut rng,
        );
        // Every tenant has exactly one flow; none may depart.
        let ids: Vec<u64> = (0..4).map(|t| p.pick(t, &mut rng).unwrap().id).collect();
        for id in ids {
            assert!(!p.depart(id));
        }
        assert_eq!(p.active_count(), 4);
    }

    #[test]
    fn pick_is_tenant_scoped() {
        let mut rng = SimRng::seed_from(4);
        let p = ChurnProcess::new(cfg(), &mut rng);
        for _ in 0..50 {
            let f = p.pick(2, &mut rng).unwrap();
            assert_eq!(f.tenant, 2);
            assert!(f.src_node < 3);
        }
        assert!(p.pick(99, &mut rng).is_none());
    }

    #[test]
    fn zero_rate_disables_churn() {
        let mut rng = SimRng::seed_from(5);
        let mut p = ChurnProcess::new(
            ChurnConfig {
                arrival_rate: 0.0,
                ..cfg()
            },
            &mut rng,
        );
        assert!(p.next_arrival_gap(&mut rng).is_none());
    }

    #[test]
    fn seeded_replay_is_identical() {
        let runs: Vec<Vec<u64>> = (0..2)
            .map(|_| {
                let mut rng = SimRng::seed_from(42);
                let mut p = ChurnProcess::new(cfg(), &mut rng);
                let mut ids = Vec::new();
                for _ in 0..100 {
                    let (f, _) = p.arrive(&mut rng);
                    ids.push(f.id);
                    if let Some(victim) = p.pick(f.tenant, &mut rng) {
                        p.depart(victim.id);
                    }
                }
                ids.push(p.active_count() as u64);
                ids
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
    }

    #[test]
    fn node_down_kills_local_flows_and_pins_spawns_elsewhere() {
        let mut rng = SimRng::seed_from(6);
        let mut p = ChurnProcess::new(cfg(), &mut rng);
        let on_node1 = p.active_on(1) as u64;
        let before = p.active_count();
        let killed = p.node_down(1);
        assert_eq!(killed, on_node1);
        assert_eq!(p.active_count(), before - killed as usize);
        assert_eq!(p.active_on(1), 0);
        // New arrivals must avoid the dead node.
        for _ in 0..50 {
            let (f, _) = p.arrive(&mut rng);
            assert_ne!(f.src_node, 1);
        }
    }

    #[test]
    fn node_up_reestablishes_one_flow_per_tenant() {
        let mut rng = SimRng::seed_from(7);
        let mut p = ChurnProcess::new(cfg(), &mut rng);
        p.node_down(2);
        let revived = p.node_up(2);
        assert_eq!(revived, 4, "one flow per tenant rejoins the node");
        assert_eq!(p.active_on(2), 4);
        for t in 0..4 {
            assert!(p.tenant_active(t) >= 1);
        }
        // The node is back in the spawn rotation.
        let mut seen = false;
        for _ in 0..100 {
            let (f, _) = p.arrive(&mut rng);
            seen |= f.src_node == 2;
        }
        assert!(seen);
    }

    #[test]
    fn node_liveness_does_not_perturb_seeded_draws() {
        // With no node down, the alive-aware spawn must consume the RNG
        // exactly as the original unconditional draw did.
        let mut a = SimRng::seed_from(8);
        let mut b = SimRng::seed_from(8);
        let mut p = ChurnProcess::new(cfg(), &mut a);
        let mut q = ChurnProcess::new(cfg(), &mut b);
        for _ in 0..64 {
            let (fa, la) = p.arrive(&mut a);
            let (fb, lb) = q.arrive(&mut b);
            assert_eq!(
                (fa.src_node, fa.src_port, la),
                (fb.src_node, fb.src_port, lb)
            );
        }
    }
}
