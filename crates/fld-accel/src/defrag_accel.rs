//! The inline IP defragmentation accelerator (paper § 7): fragments are
//! steered to the accelerator at the embedded-switch layer; reassembled
//! datagrams return to the NIC pipeline so RSS and checksum offloads work
//! again (§ 8.2.2).

use bytes::{BufMut, BytesMut};

use fld_core::system::{AccelOutput, AcceleratorModel, EmitList};
use fld_net::ethernet::EthernetHeader;
use fld_net::ipv4::{Ipv4Header, Reassembler, ReassemblyResult};
use fld_nic::packet::SimPacket;
use fld_sim::time::{SimDuration, SimTime};

/// The defragmentation accelerator: a bounded reassembly table in on-chip
/// memory (the paper's AFU spends 984 BRAMs + 64 URAMs on it, Table 5)
/// plus a fixed per-fragment pipeline cost.
#[derive(Debug)]
pub struct DefragAccelerator {
    reassembler: Reassembler,
    per_fragment: SimDuration,
    next_free: SimTime,
    next_id: u64,
    fragments_in: u64,
    datagrams_out: u64,
}

impl DefragAccelerator {
    /// Creates the accelerator with a `capacity`-datagram table and the
    /// given per-fragment cost.
    pub fn new(capacity: usize, per_fragment: SimDuration) -> Self {
        DefragAccelerator {
            reassembler: Reassembler::new(capacity),
            per_fragment,
            next_free: SimTime::ZERO,
            next_id: 1 << 48,
            fragments_in: 0,
            datagrams_out: 0,
        }
    }

    /// The prototype configuration: 1024 concurrent datagrams, 40 ns per
    /// fragment (line-rate capable at 25 GbE).
    pub fn prototype() -> Self {
        DefragAccelerator::new(1024, SimDuration::from_nanos(40))
    }

    /// Fragments absorbed.
    pub fn fragments_in(&self) -> u64 {
        self.fragments_in
    }

    /// Complete datagrams emitted.
    pub fn datagrams_out(&self) -> u64 {
        self.datagrams_out
    }

    fn rebuild_frame(eth: &EthernetHeader, ip: &Ipv4Header, payload: &[u8]) -> bytes::Bytes {
        let mut buf = BytesMut::with_capacity(14 + ip.total_len as usize);
        eth.write(&mut buf);
        ip.write(&mut buf);
        buf.put_slice(payload);
        buf.freeze()
    }
}

impl AcceleratorModel for DefragAccelerator {
    fn process(&mut self, pkt: SimPacket, next_table: Option<u16>, now: SimTime) -> AccelOutput {
        let start = now.max(self.next_free);
        let done = start + self.per_fragment;
        self.next_free = done;
        self.fragments_in += 1;

        let Some(bytes) = &pkt.bytes else {
            // Synthetic packets cannot be reassembled functionally; pass
            // them through (they are not fragments).
            return AccelOutput {
                consumed_at: done,
                emit: EmitList::one((done, 0, next_table, pkt)),
            };
        };
        let Ok((eth, rest)) = EthernetHeader::parse(bytes) else {
            return AccelOutput::absorb(done);
        };
        let Ok((ip, ip_payload)) = Ipv4Header::parse(rest) else {
            return AccelOutput::absorb(done);
        };
        let ip_payload = &ip_payload[..ip.payload_len().min(ip_payload.len())];
        match self.reassembler.push(&ip, ip_payload) {
            ReassemblyResult::NotFragment => AccelOutput {
                consumed_at: done,
                emit: EmitList::one((done, 0, next_table, pkt)),
            },
            ReassemblyResult::Pending => AccelOutput::absorb(done),
            ReassemblyResult::Complete {
                header, payload, ..
            } => {
                let frame = Self::rebuild_frame(&eth, &header, &payload);
                self.datagrams_out += 1;
                let id = self.next_id;
                self.next_id += 1;
                let mut out = SimPacket::from_frame(id, frame, pkt.born);
                out.born = pkt.born;
                out.meta.context_id = pkt.meta.context_id;
                AccelOutput {
                    consumed_at: done,
                    emit: EmitList::one((done, 0, next_table, out)),
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "ip-defrag"
    }

    fn queue_depth(&self, now: SimTime) -> f64 {
        self.next_free.since(now.min(self.next_free)).as_picos() as f64 / 1e3
    }

    fn export_metrics(&self, prefix: &str, registry: &mut fld_sim::metrics::MetricsRegistry) {
        registry.counter(format!("{prefix}.fragments_in"), self.fragments_in);
        registry.counter(format!("{prefix}.datagrams_out"), self.datagrams_out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fld_net::frame::{build_udp_frame, fragment_frame, Endpoints, ParsedFrame, L4};

    fn frags(payload_len: usize, mtu: usize, id: u16) -> Vec<SimPacket> {
        let ep = Endpoints::sim(1, 2);
        let payload: Vec<u8> = (0..payload_len as u32).map(|i| i as u8).collect();
        let frame = build_udp_frame(&ep, 4000, 5001, &payload);
        fragment_frame(&frame, mtu, id)
            .unwrap()
            .into_iter()
            .enumerate()
            .map(|(i, f)| SimPacket::from_frame(id as u64 * 100 + i as u64, f, SimTime::ZERO))
            .collect()
    }

    #[test]
    fn reassembles_and_restores_l4_visibility() {
        let mut acc = DefragAccelerator::prototype();
        let fragments = frags(3000, 1500, 9);
        assert!(fragments.len() >= 2);
        let mut emitted = Vec::new();
        for f in fragments {
            assert!(f.meta.is_fragment);
            let out = acc.process(f, Some(1), SimTime::ZERO);
            emitted.extend(out.emit);
        }
        assert_eq!(emitted.len(), 1);
        let (_, _, table, pkt) = &emitted[0];
        assert_eq!(*table, Some(1));
        // The reassembled packet is no longer a fragment and regains its
        // L4 ports, so RSS works again (the entire point of § 8.2.2).
        assert!(!pkt.meta.is_fragment);
        assert_eq!(pkt.meta.flow.dst_port, 5001);
        // And it must parse as a valid UDP frame end to end.
        let parsed = ParsedFrame::parse(pkt.bytes.as_ref().unwrap()).unwrap();
        assert!(matches!(parsed.l4, L4::Udp(_)));
        assert_eq!(parsed.payload.len(), 3000);
        assert_eq!(acc.datagrams_out(), 1);
    }

    #[test]
    fn interleaved_flows_reassemble_independently() {
        let mut acc = DefragAccelerator::prototype();
        let a = frags(3000, 1500, 1);
        let b = frags(3000, 1500, 2);
        let mut count = 0;
        for (fa, fb) in a.into_iter().zip(b) {
            count += acc.process(fa, None, SimTime::ZERO).emit.len();
            count += acc.process(fb, None, SimTime::ZERO).emit.len();
        }
        assert_eq!(count, 2);
    }

    #[test]
    fn non_fragment_passes_straight_through() {
        let mut acc = DefragAccelerator::prototype();
        let ep = Endpoints::sim(1, 2);
        let frame = build_udp_frame(&ep, 1, 2, &[0u8; 100]);
        let pkt = SimPacket::from_frame(5, frame, SimTime::ZERO);
        let out = acc.process(pkt, Some(3), SimTime::ZERO);
        assert_eq!(out.emit.len(), 1);
        assert_eq!(out.emit[0].3.id, 5);
        assert_eq!(acc.datagrams_out(), 0);
    }

    #[test]
    fn per_fragment_cost_serializes() {
        let mut acc = DefragAccelerator::new(64, SimDuration::from_nanos(100));
        let fragments = frags(6000, 1500, 3);
        let n = fragments.len();
        let mut last = SimTime::ZERO;
        for f in fragments {
            let out = acc.process(f, None, SimTime::ZERO);
            last = last.max(out.consumed_at);
        }
        assert_eq!(last.as_nanos() as usize, 100 * n);
    }

    #[test]
    fn preserves_birth_time_for_latency_accounting() {
        let mut acc = DefragAccelerator::prototype();
        let mut fragments = frags(3000, 1500, 4);
        for f in &mut fragments {
            f.born = SimTime::from_micros(7);
        }
        let mut done = None;
        for f in fragments {
            for e in acc.process(f, None, SimTime::from_micros(8)).emit {
                done = Some(e.3);
            }
        }
        assert_eq!(done.unwrap().born, SimTime::from_micros(7));
    }
}
