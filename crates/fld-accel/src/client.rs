//! The FLD-R client library and DPDK-cryptodev-style driver (paper § 7,
//! Table 4): the host-side code that lets existing applications use the
//! disaggregated ZUC accelerator as a drop-in cryptodev.
//!
//! *"Compatibility with cryptodev APIs allows replacing an existing local
//! accelerator (e.g., Intel QAT) with our disaggregated one without
//! software changes."*

use crate::zuc_accel::{CryptoOp, CryptoRequest, DecodeRequestError};

/// A cryptodev-style session: fixed key + bearer, per-op COUNT.
#[derive(Debug, Clone)]
pub struct CryptoSession {
    key: [u8; 16],
    bearer: u8,
    direction: u8,
}

/// An error completing a crypto operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CryptoClientError {
    /// The response payload length did not match the request.
    LengthMismatch {
        /// Expected bytes.
        expected: usize,
        /// Received bytes.
        got: usize,
    },
    /// The response could not be decoded.
    Decode(DecodeRequestError),
}

impl std::fmt::Display for CryptoClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CryptoClientError::LengthMismatch { expected, got } => {
                write!(f, "response length {got} does not match request {expected}")
            }
            CryptoClientError::Decode(e) => write!(f, "response decode failed: {e}"),
        }
    }
}

impl std::error::Error for CryptoClientError {}

impl CryptoSession {
    /// Creates a session.
    pub fn new(key: [u8; 16], bearer: u8, direction: u8) -> Self {
        CryptoSession {
            key,
            bearer,
            direction,
        }
    }

    /// Builds the wire request for encrypting `plaintext` at `count`.
    pub fn encrypt_request(&self, count: u32, plaintext: &[u8]) -> Vec<u8> {
        CryptoRequest {
            op: CryptoOp::Eea3Cipher,
            key: self.key,
            count,
            bearer: self.bearer,
            direction: self.direction,
            payload: plaintext.to_vec(),
        }
        .encode()
    }

    /// Builds the wire request for an integrity tag over `message`.
    pub fn integrity_request(&self, count: u32, message: &[u8]) -> Vec<u8> {
        CryptoRequest {
            op: CryptoOp::Eia3Integrity,
            key: self.key,
            count,
            bearer: self.bearer,
            direction: self.direction,
            payload: message.to_vec(),
        }
        .encode()
    }

    /// Interprets a cipher response, returning the processed payload.
    ///
    /// # Errors
    ///
    /// Fails when the response does not match the request shape.
    pub fn complete_cipher(
        &self,
        request_payload_len: usize,
        response: &[u8],
    ) -> Result<Vec<u8>, CryptoClientError> {
        let resp = CryptoRequest::decode(response).map_err(CryptoClientError::Decode)?;
        if resp.payload.len() != request_payload_len {
            return Err(CryptoClientError::LengthMismatch {
                expected: request_payload_len,
                got: resp.payload.len(),
            });
        }
        Ok(resp.payload)
    }

    /// The server-side handler: what the accelerator does with a request
    /// buffer (decode → execute on a ZUC unit → encode the response).
    ///
    /// # Errors
    ///
    /// Fails on malformed requests.
    pub fn serve(request: &[u8]) -> Result<Vec<u8>, DecodeRequestError> {
        let req = CryptoRequest::decode(request)?;
        let result = req.execute();
        let response = CryptoRequest {
            payload: result,
            ..req
        };
        Ok(response.encode())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fld_crypto::zuc::eea3;

    #[test]
    fn end_to_end_encryption_matches_local_zuc() {
        // Client encrypts via the "remote" accelerator; the result must
        // equal a local 128-EEA3 computation — the cryptodev drop-in
        // compatibility claim.
        let key = [0x5au8; 16];
        let session = CryptoSession::new(key, 3, 1);
        let plaintext = b"user plane packet payload".to_vec();
        let request = session.encrypt_request(77, &plaintext);
        let response = CryptoSession::serve(&request).unwrap();
        let ciphertext = session.complete_cipher(plaintext.len(), &response).unwrap();

        let mut expect = plaintext.clone();
        eea3(&key, 77, 3, 1, expect.len() * 8, &mut expect);
        assert_eq!(ciphertext, expect);
        assert_ne!(ciphertext, plaintext);
    }

    #[test]
    fn round_trip_decrypts() {
        let session = CryptoSession::new([1u8; 16], 0, 0);
        let plaintext = b"hello lte".to_vec();
        let enc_resp = CryptoSession::serve(&session.encrypt_request(5, &plaintext)).unwrap();
        let ciphertext = session.complete_cipher(plaintext.len(), &enc_resp).unwrap();
        let dec_resp = CryptoSession::serve(&session.encrypt_request(5, &ciphertext)).unwrap();
        let decrypted = session.complete_cipher(plaintext.len(), &dec_resp).unwrap();
        assert_eq!(decrypted, plaintext);
    }

    #[test]
    fn integrity_request_round_trips() {
        let session = CryptoSession::new([2u8; 16], 1, 0);
        let request = session.integrity_request(9, b"signalling message");
        let response = CryptoSession::serve(&request).unwrap();
        let resp = CryptoRequest::decode(&response).unwrap();
        assert_eq!(resp.payload.len(), 4, "EIA3 MAC is 32 bits");
    }

    #[test]
    fn malformed_responses_are_rejected() {
        let session = CryptoSession::new([0u8; 16], 0, 0);
        assert!(matches!(
            session.complete_cipher(10, &[0u8; 3]),
            Err(CryptoClientError::Decode(_))
        ));
        // Valid envelope, wrong length.
        let resp = CryptoSession::serve(&session.encrypt_request(1, b"abc")).unwrap();
        assert!(matches!(
            session.complete_cipher(99, &resp),
            Err(CryptoClientError::LengthMismatch {
                expected: 99,
                got: 3
            })
        ));
    }
}
