//! The echo accelerator used by the paper's FLD-E/FLD-R microbenchmarks
//! (§ 8.1: "a simple echo FLD-E accelerator, which sends back each packet
//! it receives").

use fld_core::system::{AccelOutput, AcceleratorModel, EmitList};
use fld_nic::packet::SimPacket;
use fld_sim::time::{Bandwidth, SimDuration, SimTime};

/// A pipelined echo engine: processes packets at `capacity` with a fixed
/// pipeline latency, FIFO across packets (one AXI-Stream pipe).
#[derive(Debug)]
pub struct EchoAccelerator {
    capacity: Bandwidth,
    latency: SimDuration,
    next_free: SimTime,
    processed: u64,
}

impl EchoAccelerator {
    /// Creates an echo engine. The FLD hardware interfaces run at 100 Gbps
    /// (§ 6), which is the natural capacity choice.
    pub fn new(capacity: Bandwidth, latency: SimDuration) -> Self {
        EchoAccelerator {
            capacity,
            latency,
            next_free: SimTime::ZERO,
            processed: 0,
        }
    }

    /// The § 6 prototype: 100 Gbps internal width, one pipeline stage.
    pub fn prototype() -> Self {
        EchoAccelerator::new(Bandwidth::gbps(100.0), SimDuration::from_nanos(60))
    }

    /// Packets echoed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }
}

impl AcceleratorModel for EchoAccelerator {
    fn process(&mut self, pkt: SimPacket, next_table: Option<u16>, now: SimTime) -> AccelOutput {
        let start = now.max(self.next_free);
        let done = start + self.capacity.time_for_bytes(pkt.len as u64) + self.latency;
        self.next_free = done - self.latency;
        self.processed += 1;
        AccelOutput {
            consumed_at: done,
            emit: EmitList::one((done, 0, next_table, pkt)),
        }
    }

    fn name(&self) -> &'static str {
        "echo"
    }

    fn queue_depth(&self, now: SimTime) -> f64 {
        self.next_free.since(now.min(self.next_free)).as_picos() as f64 / 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fld_net::FlowKey;

    fn pkt(id: u64, len: u32) -> SimPacket {
        SimPacket::synthetic(id, len, FlowKey::default(), SimTime::ZERO)
    }

    #[test]
    fn echoes_with_pipeline_latency() {
        let mut e = EchoAccelerator::prototype();
        let out = e.process(pkt(1, 1500), Some(2), SimTime::ZERO);
        assert_eq!(out.emit.len(), 1);
        let (at, queue, table, p) = &out.emit[0];
        assert_eq!(*queue, 0);
        assert_eq!(*table, Some(2));
        assert_eq!(p.id, 1);
        // 1500 B at 100 Gbps = 120 ns, plus 60 ns latency.
        assert_eq!(at.as_nanos(), 180);
    }

    #[test]
    fn serializes_at_capacity() {
        let mut e = EchoAccelerator::new(Bandwidth::gbps(10.0), SimDuration::ZERO);
        let a = e.process(pkt(1, 1250), None, SimTime::ZERO); // 1 us at 10 Gbps
        let b = e.process(pkt(2, 1250), None, SimTime::ZERO);
        assert_eq!(a.emit[0].0.as_nanos(), 1000);
        assert_eq!(b.emit[0].0.as_nanos(), 2000);
        assert_eq!(e.processed(), 2);
    }

    #[test]
    fn idle_gaps_are_not_accumulated() {
        let mut e = EchoAccelerator::new(Bandwidth::gbps(10.0), SimDuration::ZERO);
        e.process(pkt(1, 1250), None, SimTime::ZERO);
        let late = SimTime::from_micros(100);
        let out = e.process(pkt(2, 1250), None, late);
        assert_eq!((out.emit[0].0 - late).as_nanos(), 1000);
    }
}
