//! The disaggregated LTE (ZUC) cipher accelerator (paper § 7): eight ZUC
//! units behind a load-balancing front-end, exposed to remote clients over
//! FLD-R RDMA Sends, plus the wire format of its request/response protocol
//! ("The request/response format includes a 64 B header for the
//! cryptographic key, initialization vector (IV), and additional
//! metadata").

use fld_core::params::AccelParams;
use fld_core::rdma_system::MsgAccelerator;
use fld_crypto::zuc::{eea3, eia3};
use fld_sim::time::SimTime;

/// Size of the request/response header (§ 7).
pub const REQUEST_HEADER_BYTES: usize = 64;

/// Cipher operation requested.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CryptoOp {
    /// 128-EEA3 encryption/decryption (an involution).
    Eea3Cipher,
    /// 128-EIA3 integrity tag computation.
    Eia3Integrity,
}

/// A parsed cryptographic request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CryptoRequest {
    /// Operation.
    pub op: CryptoOp,
    /// 128-bit cipher key.
    pub key: [u8; 16],
    /// LTE COUNT value.
    pub count: u32,
    /// LTE BEARER (5 bits).
    pub bearer: u8,
    /// Direction bit.
    pub direction: u8,
    /// Payload to process.
    pub payload: Vec<u8>,
}

/// An error decoding a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeRequestError {
    /// Shorter than the 64 B header.
    Truncated,
    /// Unknown operation code.
    BadOp(u8),
}

impl std::fmt::Display for DecodeRequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeRequestError::Truncated => write!(f, "request shorter than 64 B header"),
            DecodeRequestError::BadOp(op) => write!(f, "unknown crypto op {op}"),
        }
    }
}

impl std::error::Error for DecodeRequestError {}

impl CryptoRequest {
    /// Serializes the request: 64 B header followed by the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![0u8; REQUEST_HEADER_BYTES];
        out[0] = match self.op {
            CryptoOp::Eea3Cipher => 1,
            CryptoOp::Eia3Integrity => 2,
        };
        out[1] = self.bearer;
        out[2] = self.direction;
        out[4..8].copy_from_slice(&self.count.to_be_bytes());
        out[8..24].copy_from_slice(&self.key);
        out[24..28].copy_from_slice(&(self.payload.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses a request from its wire form.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeRequestError`] on truncation or unknown op codes.
    pub fn decode(data: &[u8]) -> Result<CryptoRequest, DecodeRequestError> {
        if data.len() < REQUEST_HEADER_BYTES {
            return Err(DecodeRequestError::Truncated);
        }
        let op = match data[0] {
            1 => CryptoOp::Eea3Cipher,
            2 => CryptoOp::Eia3Integrity,
            other => return Err(DecodeRequestError::BadOp(other)),
        };
        let mut key = [0u8; 16];
        key.copy_from_slice(&data[8..24]);
        let len = u32::from_be_bytes([data[24], data[25], data[26], data[27]]) as usize;
        let payload = data[REQUEST_HEADER_BYTES..]
            .get(..len)
            .unwrap_or(&data[REQUEST_HEADER_BYTES..]);
        Ok(CryptoRequest {
            op,
            key,
            count: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
            bearer: data[1],
            direction: data[2],
            payload: payload.to_vec(),
        })
    }

    /// Executes the request functionally, producing the response payload —
    /// what one ZUC unit computes.
    pub fn execute(&self) -> Vec<u8> {
        match self.op {
            CryptoOp::Eea3Cipher => {
                let mut data = self.payload.clone();
                eea3(
                    &self.key,
                    self.count,
                    self.bearer,
                    self.direction,
                    data.len() * 8,
                    &mut data,
                );
                data
            }
            CryptoOp::Eia3Integrity => {
                let mac = eia3(
                    &self.key,
                    self.count,
                    self.bearer,
                    self.direction,
                    self.payload.len() * 8,
                    &self.payload,
                );
                mac.to_be_bytes().to_vec()
            }
        }
    }
}

/// The performance model of the disaggregated accelerator: a front-end
/// load balancer dispatching to the earliest-free of `units` ZUC engines.
#[derive(Debug)]
pub struct ZucAccelerator {
    params: AccelParams,
    units: Vec<SimTime>,
    processed: u64,
}

impl ZucAccelerator {
    /// Creates the accelerator from its parameters.
    pub fn new(params: AccelParams) -> Self {
        ZucAccelerator {
            units: vec![SimTime::ZERO; params.zuc_units],
            params,
            processed: 0,
        }
    }

    /// Requests processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }
}

impl MsgAccelerator for ZucAccelerator {
    fn process_message(&mut self, bytes: u32, now: SimTime) -> (SimTime, u32) {
        // Front-end LB: earliest-free unit.
        let unit = self
            .units
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .map(|(i, _)| i)
            .expect("at least one unit");
        let payload = bytes.saturating_sub(REQUEST_HEADER_BYTES as u32);
        let start = now.max(self.units[unit]);
        let done = start + self.params.zuc_request_time(payload as u64);
        self.units[unit] = done;
        self.processed += 1;
        // The response mirrors the request size (ciphertext + header).
        (done, bytes)
    }

    fn name(&self) -> &'static str {
        "zuc"
    }

    fn queue_depth(&self, now: SimTime) -> f64 {
        self.units
            .iter()
            .map(|&t| t.since(now.min(t)).as_picos() as f64 / 1e3)
            .fold(0.0, f64::max)
    }
}

/// The software baseline: DPDK's ZUC driver on one host core
/// (§ 8.2.1, "based on Intel Multi-Buffer Crypto Library").
#[derive(Debug)]
pub struct SoftwareZuc {
    core_bps: f64,
    next_free: SimTime,
    processed: u64,
}

impl SoftwareZuc {
    /// Creates the baseline at `core_gbps` per-core throughput.
    pub fn new(core_gbps: f64) -> Self {
        SoftwareZuc {
            core_bps: core_gbps * 1e9,
            next_free: SimTime::ZERO,
            processed: 0,
        }
    }

    /// Requests processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }
}

impl MsgAccelerator for SoftwareZuc {
    fn process_message(&mut self, bytes: u32, now: SimTime) -> (SimTime, u32) {
        let payload = bytes.saturating_sub(REQUEST_HEADER_BYTES as u32);
        let start = now.max(self.next_free);
        let work = fld_sim::time::SimDuration::from_secs_f64(payload as f64 * 8.0 / self.core_bps);
        let done = start + work;
        self.next_free = done;
        self.processed += 1;
        (done, bytes)
    }

    fn name(&self) -> &'static str {
        "sw-zuc"
    }

    fn queue_depth(&self, now: SimTime) -> f64 {
        self.next_free.since(now.min(self.next_free)).as_picos() as f64 / 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let req = CryptoRequest {
            op: CryptoOp::Eea3Cipher,
            key: [7u8; 16],
            count: 0xdeadbeef,
            bearer: 0x15,
            direction: 1,
            payload: b"lte user plane data".to_vec(),
        };
        let wire = req.encode();
        assert_eq!(wire.len(), REQUEST_HEADER_BYTES + req.payload.len());
        let back = CryptoRequest::decode(&wire).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn decode_errors() {
        assert_eq!(
            CryptoRequest::decode(&[0u8; 10]),
            Err(DecodeRequestError::Truncated)
        );
        let mut bad = vec![0u8; 64];
        bad[0] = 9;
        assert_eq!(
            CryptoRequest::decode(&bad),
            Err(DecodeRequestError::BadOp(9))
        );
    }

    #[test]
    fn execute_cipher_is_involution() {
        let mk = |payload: Vec<u8>| CryptoRequest {
            op: CryptoOp::Eea3Cipher,
            key: [3u8; 16],
            count: 42,
            bearer: 5,
            direction: 0,
            payload,
        };
        let plaintext = b"the quick brown fox".to_vec();
        let ciphertext = mk(plaintext.clone()).execute();
        assert_ne!(ciphertext, plaintext);
        let decrypted = mk(ciphertext).execute();
        assert_eq!(decrypted, plaintext);
    }

    #[test]
    fn execute_integrity_detects_tampering() {
        let req = CryptoRequest {
            op: CryptoOp::Eia3Integrity,
            key: [9u8; 16],
            count: 1,
            bearer: 0,
            direction: 0,
            payload: b"signalling".to_vec(),
        };
        let mac1 = req.execute();
        let mut tampered = req.clone();
        tampered.payload[0] ^= 1;
        assert_ne!(tampered.execute(), mac1);
        assert_eq!(mac1.len(), 4);
    }

    #[test]
    fn eight_units_give_8x_single_unit_throughput() {
        let params = AccelParams::default();
        let mut acc = ZucAccelerator::new(params);
        // Saturate with 512 B requests all arriving at t=0.
        let n = 8000u32;
        let mut last = SimTime::ZERO;
        for _ in 0..n {
            let (done, _) = acc.process_message(512 + 64, SimTime::ZERO);
            last = last.max(done);
        }
        let gbps = n as f64 * 512.0 * 8.0 / last.as_secs_f64() / 1e9;
        let expect = params.zuc_units as f64 * params.zuc_unit_gbps;
        assert!(
            (gbps - expect).abs() / expect < 0.02,
            "gbps {gbps:.2} vs {expect:.2}"
        );
    }

    #[test]
    fn software_baseline_is_about_4x_slower() {
        let a = AccelParams::default();
        let mut hw = ZucAccelerator::new(a);
        let mut sw = SoftwareZuc::new(a.sw_zuc_core_gbps);
        let mut hw_last = SimTime::ZERO;
        let mut sw_last = SimTime::ZERO;
        for _ in 0..1000 {
            hw_last = hw_last.max(hw.process_message(1024 + 64, SimTime::ZERO).0);
            sw_last = sw_last.max(sw.process_message(1024 + 64, SimTime::ZERO).0);
        }
        let ratio = sw_last.as_secs_f64() / hw_last.as_secs_f64();
        // 38 Gbps aggregate vs 4.4 Gbps core: ~8.7x in raw compute (the 4x
        // end-to-end factor of Fig. 8a additionally includes the network).
        assert!(ratio > 4.0, "hw should be much faster, ratio {ratio:.1}");
    }

    #[test]
    fn lb_prefers_idle_units() {
        let mut acc = ZucAccelerator::new(AccelParams::default());
        // Two simultaneous requests must run in parallel (same completion).
        let (a, _) = acc.process_message(512 + 64, SimTime::ZERO);
        let (b, _) = acc.process_message(512 + 64, SimTime::ZERO);
        assert_eq!(a, b);
    }
}
