//! # fld-accel — the paper's example accelerators and baselines
//!
//! FlexDriver's evaluation builds three accelerator function units (§ 7)
//! plus an echo microbenchmark engine; this crate implements all of them
//! against the [`fld_core`] simulation interfaces, with the *functional*
//! parts (crypto, reassembly, token parsing) implemented for real:
//!
//! * [`echo`] — the § 8.1 echo accelerator;
//! * [`zuc_accel`] — the disaggregated LTE cipher: 8 ZUC units behind a
//!   load balancer, the 64 B request protocol, and the software-ZUC
//!   baseline;
//! * [`client`] — the FLD-R client library / cryptodev-style driver;
//! * [`defrag_accel`] — the inline IP defragmentation offload;
//! * [`iot_accel`] — the IoT JWT authentication offload with per-tenant
//!   keys and the § 8.2.3 capacity knob;
//! * [`zuc_ext`] — the paper's § 8.2.1 future-work optimizations realized:
//!   on-FPGA session key storage and request batching;
//! * [`fault_accel`] — a transient-stall fault wrapper for any
//!   accelerator model, driven by [`fld_sim::fault`].
//!
//! # Examples
//!
//! ```
//! use fld_accel::client::CryptoSession;
//!
//! let session = CryptoSession::new([7u8; 16], 3, 0);
//! let request = session.encrypt_request(1, b"payload");
//! let response = CryptoSession::serve(&request)?;
//! let ciphertext = session.complete_cipher(7, &response)?;
//! assert_eq!(ciphertext.len(), 7);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod defrag_accel;
pub mod echo;
pub mod fault_accel;
pub mod iot_accel;
pub mod zuc_accel;
pub mod zuc_ext;

pub use client::CryptoSession;
pub use defrag_accel::DefragAccelerator;
pub use echo::EchoAccelerator;
pub use fault_accel::StallingAccelerator;
pub use iot_accel::IotAuthAccelerator;
pub use zuc_accel::{CryptoOp, CryptoRequest, SoftwareZuc, ZucAccelerator};
pub use zuc_ext::{BatchedZucAccelerator, CompactRequest, SessionKeyCache};
