//! The IoT token-authentication offload (paper § 7): validates a JSON Web
//! Token inside each CoAP message, "dropping packets with invalid
//! HMAC-SHA256 signature". Tenants share the accelerator: the NIC tags
//! flows with a tenant context id and the accelerator indexes "a linear
//! table of HMAC keys" by that tag. Performance isolation comes from NIC
//! traffic shaping (§ 8.2.3).

use fld_core::system::{AccelOutput, AcceleratorModel, EmitList};
use fld_crypto::jwt;
use fld_net::coap::CoapMessage;
use fld_net::frame::ParsedFrame;
use fld_nic::packet::SimPacket;
use fld_sim::link::TokenBucket;
use fld_sim::time::{Bandwidth, SimDuration, SimTime};

/// The IoT authentication accelerator model.
///
/// Eight processing units validate tokens (20 Mpps aggregate at 256 B,
/// § 7). An optional *capacity limit* models the § 8.2.3 isolation
/// experiment, where "the accelerator is configured to accept only
/// 12 Gbps of traffic" — excess is dropped, since accelerators must not
/// backpressure FLD (§ 5.5).
#[derive(Debug)]
pub struct IotAuthAccelerator {
    /// Per-tenant HMAC keys, indexed by context id.
    keys: Vec<Vec<u8>>,
    units: Vec<SimTime>,
    per_packet: SimDuration,
    /// Optional ingest capacity limit (the experiment's 12 Gbps knob).
    capacity: Option<TokenBucket>,
    accepted: u64,
    rejected_auth: u64,
    dropped_capacity: u64,
}

impl IotAuthAccelerator {
    /// Creates the accelerator with `units` processing units at
    /// `per_packet` cost each.
    pub fn new(units: usize, per_packet: SimDuration) -> Self {
        assert!(units > 0, "need at least one unit");
        IotAuthAccelerator {
            keys: Vec::new(),
            units: vec![SimTime::ZERO; units],
            per_packet,
            capacity: None,
            accepted: 0,
            rejected_auth: 0,
            dropped_capacity: 0,
        }
    }

    /// The § 7 prototype: 8 units, 20 Mpps aggregate (400 ns/unit/packet).
    pub fn prototype() -> Self {
        IotAuthAccelerator::new(8, SimDuration::from_nanos(400))
    }

    /// Imposes an aggregate ingest capacity (the § 8.2.3 12 Gbps setting).
    pub fn with_capacity(mut self, rate: Bandwidth) -> Self {
        // A shallow burst allowance (~4 MTU frames) smooths phase effects
        // without letting the average exceed `rate`.
        self.capacity = Some(TokenBucket::new(rate, 6000));
        self
    }

    /// Installs the HMAC key for `context` (linear key table, § 7).
    pub fn set_key(&mut self, context: u32, key: &[u8]) {
        let idx = context as usize;
        if self.keys.len() <= idx {
            self.keys.resize(idx + 1, Vec::new());
        }
        self.keys[idx] = key.to_vec();
    }

    /// Packets that passed authentication.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Packets dropped for invalid/missing tokens.
    pub fn rejected_auth(&self) -> u64 {
        self.rejected_auth
    }

    /// Packets dropped by the capacity limiter.
    pub fn dropped_capacity(&self) -> u64 {
        self.dropped_capacity
    }

    /// Extracts and validates the token of a functional packet; synthetic
    /// packets (no bytes) are treated as carrying valid tokens so pure
    /// performance runs need not build real crypto traffic.
    fn validate(&self, pkt: &SimPacket) -> bool {
        let Some(bytes) = &pkt.bytes else {
            return true;
        };
        let Ok(parsed) = ParsedFrame::parse(bytes) else {
            return false;
        };
        let Ok(coap) = CoapMessage::parse(&parsed.payload) else {
            return false;
        };
        let Ok(token) = std::str::from_utf8(&coap.payload) else {
            return false;
        };
        let Some(key) = self.keys.get(pkt.meta.context_id as usize) else {
            return false;
        };
        if key.is_empty() {
            return false;
        }
        jwt::verify(token, key).is_ok()
    }
}

impl AcceleratorModel for IotAuthAccelerator {
    fn process(&mut self, pkt: SimPacket, next_table: Option<u16>, now: SimTime) -> AccelOutput {
        // Capacity limiter: packets beyond the configured ingest rate are
        // dropped — accelerators must not backpressure FLD (§ 5.5).
        if let Some(tb) = &mut self.capacity {
            if tb.earliest_send(now, pkt.len as u64) > now {
                self.dropped_capacity += 1;
                return AccelOutput::absorb(now);
            }
            tb.consume(now, pkt.len as u64);
        }
        // Dispatch to the earliest-free unit.
        let unit = self
            .units
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .map(|(i, _)| i)
            .expect("at least one unit");
        let start = now.max(self.units[unit]);
        let done = start + self.per_packet;
        self.units[unit] = done;
        if self.validate(&pkt) {
            self.accepted += 1;
            AccelOutput {
                consumed_at: done,
                emit: EmitList::one((done, 0, next_table, pkt)),
            }
        } else {
            self.rejected_auth += 1;
            AccelOutput::absorb(done)
        }
    }

    fn name(&self) -> &'static str {
        "iot-auth"
    }

    fn queue_depth(&self, now: SimTime) -> f64 {
        // Time until the last unit drains: the depth of the busiest queue.
        self.units
            .iter()
            .map(|&t| t.since(now.min(t)).as_picos() as f64 / 1e3)
            .fold(0.0, f64::max)
    }

    fn export_metrics(&self, prefix: &str, registry: &mut fld_sim::metrics::MetricsRegistry) {
        registry.counter(format!("{prefix}.accepted"), self.accepted);
        registry.counter(format!("{prefix}.rejected_auth"), self.rejected_auth);
        registry.counter(format!("{prefix}.dropped_capacity"), self.dropped_capacity);
        registry.counter(format!("{prefix}.units"), self.units.len() as u64);
    }
}

/// Builds a CoAP-over-UDP frame carrying a signed JWT for `context`'s key —
/// the traffic the TRex generator sends in § 8.2.3.
pub fn build_token_frame(
    ep: &fld_net::frame::Endpoints,
    src_port: u16,
    key: &[u8],
    claims: &[u8],
    message_id: u16,
) -> bytes::Bytes {
    let token = jwt::sign(claims, key);
    let coap = CoapMessage::post(message_id, b"tk", token.into_bytes());
    let mut payload = bytes::BytesMut::new();
    coap.write(&mut payload);
    fld_net::frame::build_udp_frame(ep, src_port, 5683, &payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fld_net::frame::Endpoints;

    fn token_packet(key: &[u8], context: u32) -> SimPacket {
        let ep = Endpoints::sim(1, 2);
        let frame = build_token_frame(&ep, 1000, key, br#"{"device":"d1"}"#, 7);
        let mut pkt = SimPacket::from_frame(1, frame, SimTime::ZERO);
        pkt.meta.context_id = context;
        pkt
    }

    #[test]
    fn valid_token_passes() {
        let mut acc = IotAuthAccelerator::prototype();
        acc.set_key(3, b"tenant-3-key");
        let out = acc.process(token_packet(b"tenant-3-key", 3), Some(2), SimTime::ZERO);
        assert_eq!(out.emit.len(), 1);
        assert_eq!(acc.accepted(), 1);
        assert_eq!(acc.rejected_auth(), 0);
    }

    #[test]
    fn wrong_key_or_tenant_rejected() {
        let mut acc = IotAuthAccelerator::prototype();
        acc.set_key(3, b"tenant-3-key");
        // Signed with another tenant's key.
        let out = acc.process(token_packet(b"other-key", 3), None, SimTime::ZERO);
        assert!(out.emit.is_empty());
        // Unknown tenant id.
        let out = acc.process(token_packet(b"tenant-3-key", 9), None, SimTime::ZERO);
        assert!(out.emit.is_empty());
        assert_eq!(acc.rejected_auth(), 2);
    }

    #[test]
    fn garbage_payload_rejected() {
        let mut acc = IotAuthAccelerator::prototype();
        acc.set_key(1, b"k");
        let ep = Endpoints::sim(1, 2);
        let frame = fld_net::frame::build_udp_frame(&ep, 1, 5683, b"not coap at all");
        let mut pkt = SimPacket::from_frame(9, frame, SimTime::ZERO);
        pkt.meta.context_id = 1;
        assert!(acc.process(pkt, None, SimTime::ZERO).emit.is_empty());
    }

    #[test]
    fn synthetic_packets_assumed_valid() {
        let mut acc = IotAuthAccelerator::prototype();
        let pkt = SimPacket::synthetic(1, 256, fld_net::FlowKey::default(), SimTime::ZERO);
        assert_eq!(acc.process(pkt, None, SimTime::ZERO).emit.len(), 1);
    }

    #[test]
    fn aggregate_rate_is_20mpps() {
        let mut acc = IotAuthAccelerator::prototype();
        let n = 20_000u64;
        let mut last = SimTime::ZERO;
        for i in 0..n {
            let pkt = SimPacket::synthetic(i, 256, fld_net::FlowKey::default(), SimTime::ZERO);
            last = last.max(acc.process(pkt, None, SimTime::ZERO).consumed_at);
        }
        let mpps = n as f64 / last.as_secs_f64() / 1e6;
        assert!((mpps - 20.0).abs() < 0.5, "{mpps:.2} Mpps");
    }

    #[test]
    fn capacity_limiter_drops_excess() {
        let mut acc = IotAuthAccelerator::prototype().with_capacity(Bandwidth::gbps(12.0));
        // Offer 24 Gbps of 1024 B packets for 1 ms.
        let gap = SimDuration::from_secs_f64(1024.0 * 8.0 / 24e9);
        let mut now = SimTime::ZERO;
        let mut offered = 0u64;
        while now < SimTime::from_millis(1) {
            let pkt = SimPacket::synthetic(offered, 1024, fld_net::FlowKey::default(), now);
            acc.process(pkt, None, now);
            offered += 1;
            now += gap;
        }
        let frac = acc.accepted() as f64 / offered as f64;
        assert!((frac - 0.5).abs() < 0.05, "accepted fraction {frac}");
        assert!(acc.dropped_capacity() > 0);
    }
}
