//! Transient-stall fault wrapper for accelerator models.
//!
//! Real accelerator function units stall: a DDR refresh, a partial
//! reconfiguration, a clock-domain crossing backing up. FlexDriver's
//! hardware absorbs short stalls in its SRAM buffers and backpressures the
//! NIC for long ones (paper § 5.3); what it must *not* do is lose packets.
//! [`StallingAccelerator`] wraps any [`AcceleratorModel`] and injects
//! seeded, deterministic processing stalls via [`fld_sim::fault`], so
//! chaos experiments can verify the absorb/backpressure machinery end to
//! end while every stall lands in the fault ledger.

use fld_core::system::{AccelOutput, AcceleratorModel};
use fld_nic::packet::SimPacket;
use fld_sim::fault::{FaultInjector, FaultKind, FaultOutcome};
use fld_sim::time::{SimDuration, SimTime};

/// Wraps an accelerator with deterministic transient stalls.
///
/// On each processed packet the injector rolls
/// [`FaultKind::AccelStall`]; a hit delays everything the inner model
/// emits (and its `consumed_at`) by a stall drawn uniformly from
/// `(0, max_stall]`. The stall is recorded in the shared
/// [`fld_sim::fault::FaultLedger`] as recovered, with the stall duration
/// as the recovery latency.
#[derive(Debug)]
pub struct StallingAccelerator<A> {
    inner: A,
    injector: FaultInjector,
    max_stall: SimDuration,
    stalls: u64,
    stalled_for: SimDuration,
}

impl<A: AcceleratorModel> StallingAccelerator<A> {
    /// Wraps `inner`, drawing stall decisions from `injector` with stalls
    /// up to `max_stall`.
    pub fn new(inner: A, injector: FaultInjector, max_stall: SimDuration) -> Self {
        StallingAccelerator {
            inner,
            injector,
            max_stall,
            stalls: 0,
            stalled_for: SimDuration::ZERO,
        }
    }

    /// The wrapped model.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Stalls injected so far.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Total simulated time lost to stalls.
    pub fn stalled_for(&self) -> SimDuration {
        self.stalled_for
    }

    /// Registers this wrapper's fault injector under
    /// `faults/<entity>/...` in `tree`, so every injected stall is
    /// attributable to a per-entity counter path.
    pub fn wire_counters(&mut self, tree: &fld_sim::counters::CounterTree, entity: &str) {
        self.injector.wire_counters(tree, entity);
    }
}

impl<A: AcceleratorModel> AcceleratorModel for StallingAccelerator<A> {
    fn process(&mut self, pkt: SimPacket, next_table: Option<u16>, now: SimTime) -> AccelOutput {
        let mut out = self.inner.process(pkt, next_table, now);
        if self.injector.roll(FaultKind::AccelStall) {
            let stall = self.injector.magnitude(self.max_stall);
            self.stalls += 1;
            self.stalled_for += stall;
            out.consumed_at += stall;
            for (at, _, _, _) in out.emit.iter_mut() {
                *at += stall;
            }
            self.injector
                .ledger()
                .resolve(FaultOutcome::Recovered, Some(stall));
        }
        out
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn queue_depth(&self, now: SimTime) -> f64 {
        self.inner.queue_depth(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::echo::EchoAccelerator;
    use fld_net::FlowKey;
    use fld_sim::fault::{FaultLedger, FaultPlan};

    fn pkt(id: u64) -> SimPacket {
        SimPacket::synthetic(id, 1500, FlowKey::default(), SimTime::ZERO)
    }

    fn wrapped(rate: f64, seed: u64) -> StallingAccelerator<EchoAccelerator> {
        let plan = FaultPlan::new(rate, seed).with_kinds(&[FaultKind::AccelStall]);
        let injector = plan.injector("accel", &FaultLedger::new());
        StallingAccelerator::new(
            EchoAccelerator::prototype(),
            injector,
            SimDuration::from_micros(5),
        )
    }

    #[test]
    fn zero_rate_is_transparent() {
        let mut plain = EchoAccelerator::prototype();
        let mut faulty = wrapped(0.0, 1);
        for id in 0..50 {
            let a = plain.process(pkt(id), Some(2), SimTime::ZERO);
            let b = faulty.process(pkt(id), Some(2), SimTime::ZERO);
            assert_eq!(a.consumed_at, b.consumed_at);
            assert_eq!(a.emit[0].0, b.emit[0].0);
        }
        assert_eq!(faulty.stalls(), 0);
    }

    #[test]
    fn stalls_delay_and_land_in_the_ledger() {
        let mut faulty = wrapped(1.0, 7);
        let mut plain = EchoAccelerator::prototype();
        let base = plain.process(pkt(1), None, SimTime::ZERO);
        let out = faulty.process(pkt(1), None, SimTime::ZERO);
        assert_eq!(faulty.stalls(), 1);
        assert!(out.emit[0].0 > base.emit[0].0, "stall must add delay");
        assert_eq!(
            (out.emit[0].0 - base.emit[0].0),
            faulty.stalled_for(),
            "all lost time is accounted"
        );
        let ledger = faulty.injector.ledger().clone();
        assert_eq!(ledger.injected_total(), 1);
        assert_eq!(ledger.recovered(), 1);
        assert_eq!(ledger.unaccounted(), 0);
    }

    #[test]
    fn stall_pattern_is_seed_deterministic() {
        let run = |seed| {
            let mut a = wrapped(0.3, seed);
            (0..100)
                .map(|id| a.process(pkt(id), None, SimTime::ZERO).emit[0].0)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42), "same seed, same stalls");
        assert_ne!(run(42), run(43), "different seed, different stalls");
    }

    #[test]
    fn wired_stalls_show_up_under_the_fault_prefix() {
        let tree = fld_sim::counters::CounterTree::new();
        let mut faulty = wrapped(1.0, 7);
        faulty.wire_counters(&tree, "accel");
        for id in 0..20 {
            faulty.process(pkt(id), None, SimTime::ZERO);
        }
        assert_eq!(
            tree.get("faults/accel/accel_stall"),
            Some(faulty.stalls()),
            "every injected stall is attributed to its counter path"
        );
    }
}
