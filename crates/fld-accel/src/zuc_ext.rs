//! The paper's stated future-work optimizations for the disaggregated ZUC
//! accelerator, realized (§ 8.2.1: *"This result can be further improved by
//! adding on-FPGA key storage and request batching, which we leave to
//! future work"*):
//!
//! * **On-FPGA key storage** ([`SessionKeyCache`], [`CompactRequest`]):
//!   clients establish a session once; subsequent requests carry a 16-byte
//!   compact header referencing the stored key instead of shipping the full
//!   64-byte key+IV header with every message.
//! * **Request batching** ([`BatchedZucAccelerator`]): the front-end packs
//!   consecutive small requests into one unit dispatch, amortizing the
//!   per-request key/IV setup.

use fld_core::params::AccelParams;
use fld_core::rdma_system::MsgAccelerator;
use fld_crypto::zuc::eea3;
use fld_sim::time::SimTime;

use crate::zuc_accel::REQUEST_HEADER_BYTES;

/// Size of the compact request header once the key lives on-FPGA.
pub const COMPACT_HEADER_BYTES: usize = 16;

/// The on-FPGA session key table.
///
/// # Examples
///
/// ```
/// use fld_accel::zuc_ext::SessionKeyCache;
///
/// let mut cache = SessionKeyCache::new(256);
/// let session = cache.install([7u8; 16], 3, 0).unwrap();
/// assert!(cache.lookup(session).is_some());
/// ```
#[derive(Debug)]
pub struct SessionKeyCache {
    entries: Vec<Option<([u8; 16], u8, u8)>>,
    installed: u64,
}

impl SessionKeyCache {
    /// Creates a cache with `slots` session slots (on-chip SRAM).
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn new(slots: usize) -> Self {
        assert!(slots > 0, "need at least one slot");
        SessionKeyCache {
            entries: vec![None; slots],
            installed: 0,
        }
    }

    /// Installs a session `(key, bearer, direction)`; returns its id, or
    /// `None` when the table is full.
    pub fn install(&mut self, key: [u8; 16], bearer: u8, direction: u8) -> Option<u16> {
        let slot = self.entries.iter().position(|e| e.is_none())?;
        self.entries[slot] = Some((key, bearer, direction));
        self.installed += 1;
        Some(slot as u16)
    }

    /// Releases a session id.
    pub fn remove(&mut self, session: u16) -> bool {
        self.entries
            .get_mut(session as usize)
            .and_then(Option::take)
            .is_some()
    }

    /// Looks up a session.
    pub fn lookup(&self, session: u16) -> Option<([u8; 16], u8, u8)> {
        self.entries.get(session as usize).copied().flatten()
    }

    /// Sessions installed over the cache's lifetime.
    pub fn installed(&self) -> u64 {
        self.installed
    }
}

/// The compact request format: 16 bytes of header referencing an installed
/// session, followed by the payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactRequest {
    /// Session id into the on-FPGA key table.
    pub session: u16,
    /// LTE COUNT.
    pub count: u32,
    /// Payload.
    pub payload: Vec<u8>,
}

/// An error decoding or executing a compact request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactRequestError {
    /// Shorter than the 16-byte header.
    Truncated,
    /// The referenced session is not installed.
    UnknownSession(u16),
}

impl std::fmt::Display for CompactRequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompactRequestError::Truncated => write!(f, "request shorter than compact header"),
            CompactRequestError::UnknownSession(s) => write!(f, "unknown session {s}"),
        }
    }
}

impl std::error::Error for CompactRequestError {}

impl CompactRequest {
    /// Serializes: 16-byte header + payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![0u8; COMPACT_HEADER_BYTES];
        out[0..2].copy_from_slice(&self.session.to_be_bytes());
        out[2..6].copy_from_slice(&self.count.to_be_bytes());
        out[6..10].copy_from_slice(&(self.payload.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses the wire form.
    ///
    /// # Errors
    ///
    /// Fails on truncation.
    pub fn decode(data: &[u8]) -> Result<CompactRequest, CompactRequestError> {
        if data.len() < COMPACT_HEADER_BYTES {
            return Err(CompactRequestError::Truncated);
        }
        let len = u32::from_be_bytes(data[6..10].try_into().expect("4 bytes")) as usize;
        let payload = data[COMPACT_HEADER_BYTES..]
            .get(..len)
            .unwrap_or(&data[COMPACT_HEADER_BYTES..]);
        Ok(CompactRequest {
            session: u16::from_be_bytes(data[0..2].try_into().expect("2 bytes")),
            count: u32::from_be_bytes(data[2..6].try_into().expect("4 bytes")),
            payload: payload.to_vec(),
        })
    }

    /// Executes against the key cache (the functional server path).
    ///
    /// # Errors
    ///
    /// Fails when the session is not installed.
    pub fn execute(&self, cache: &SessionKeyCache) -> Result<Vec<u8>, CompactRequestError> {
        let (key, bearer, direction) = cache
            .lookup(self.session)
            .ok_or(CompactRequestError::UnknownSession(self.session))?;
        let mut data = self.payload.clone();
        eea3(
            &key,
            self.count,
            bearer,
            direction,
            data.len() * 8,
            &mut data,
        );
        Ok(data)
    }
}

/// Performance model of the extended accelerator: key cache (smaller
/// header, no per-request key load) and optional request batching.
#[derive(Debug)]
pub struct BatchedZucAccelerator {
    params: AccelParams,
    units: Vec<SimTime>,
    /// Requests coalesced per unit dispatch.
    batch: u32,
    /// Whether the key cache removes the per-request key-load setup.
    key_cache: bool,
    processed: u64,
}

impl BatchedZucAccelerator {
    /// Creates the extended accelerator.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn new(params: AccelParams, batch: u32, key_cache: bool) -> Self {
        assert!(batch > 0, "batch must be positive");
        BatchedZucAccelerator {
            units: vec![SimTime::ZERO; params.zuc_units],
            params,
            batch,
            key_cache,
            processed: 0,
        }
    }

    /// Header bytes each request carries on the wire.
    pub fn header_bytes(&self) -> u32 {
        if self.key_cache {
            COMPACT_HEADER_BYTES as u32
        } else {
            REQUEST_HEADER_BYTES as u32
        }
    }

    /// Requests processed.
    pub fn processed(&self) -> u64 {
        self.processed
    }
}

impl MsgAccelerator for BatchedZucAccelerator {
    fn process_message(&mut self, bytes: u32, now: SimTime) -> (SimTime, u32) {
        let payload = bytes.saturating_sub(self.header_bytes());
        let unit = self
            .units
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .map(|(i, _)| i)
            .expect("at least one unit");
        // Key cache: the IV still loads per request, but the key-schedule
        // setup disappears; batching then amortizes the remaining setup
        // across the batch.
        let base_setup = if self.key_cache {
            self.params.zuc_setup / 2
        } else {
            self.params.zuc_setup
        };
        let setup = base_setup / self.batch as u64;
        let stream = self.params.zuc_request_time(payload as u64) - self.params.zuc_setup;
        let start = now.max(self.units[unit]);
        let done = start + setup + stream;
        self.units[unit] = done;
        self.processed += 1;
        (done, bytes)
    }

    fn name(&self) -> &'static str {
        "zuc-extended"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fld_crypto::zuc::eea3 as ref_eea3;

    #[test]
    fn compact_request_round_trips() {
        let req = CompactRequest {
            session: 5,
            count: 99,
            payload: b"data".to_vec(),
        };
        assert_eq!(CompactRequest::decode(&req.encode()).unwrap(), req);
        assert_eq!(req.encode().len(), COMPACT_HEADER_BYTES + 4);
    }

    #[test]
    fn key_cache_lifecycle() {
        let mut cache = SessionKeyCache::new(2);
        let a = cache.install([1u8; 16], 0, 0).unwrap();
        let b = cache.install([2u8; 16], 1, 1).unwrap();
        assert_ne!(a, b);
        assert!(cache.install([3u8; 16], 0, 0).is_none(), "table full");
        assert!(cache.remove(a));
        assert!(!cache.remove(a));
        assert!(cache.install([3u8; 16], 0, 0).is_some());
        assert_eq!(cache.installed(), 3);
    }

    #[test]
    fn compact_execution_matches_full_path() {
        let key = [0x3Cu8; 16];
        let mut cache = SessionKeyCache::new(16);
        let session = cache.install(key, 7, 1).unwrap();
        let req = CompactRequest {
            session,
            count: 1234,
            payload: b"payload bytes".to_vec(),
        };
        let out = req.execute(&cache).unwrap();
        let mut expect = req.payload.clone();
        ref_eea3(&key, 1234, 7, 1, expect.len() * 8, &mut expect);
        assert_eq!(out, expect);
    }

    #[test]
    fn unknown_session_rejected() {
        let cache = SessionKeyCache::new(4);
        let req = CompactRequest {
            session: 2,
            count: 0,
            payload: vec![],
        };
        assert_eq!(
            req.execute(&cache),
            Err(CompactRequestError::UnknownSession(2))
        );
    }

    #[test]
    fn extensions_speed_up_small_requests() {
        let params = AccelParams::default();
        let payload = 64u32;
        // Compare *payload* throughput: the whole point of the extensions
        // is more useful bytes per unit-time at small request sizes.
        let throughput = |accel: &mut dyn MsgAccelerator, msg: u32| {
            let mut last = SimTime::ZERO;
            let n = 4000;
            for _ in 0..n {
                let (done, _) = accel.process_message(msg, SimTime::ZERO);
                last = last.max(done);
            }
            n as f64 * payload as f64 * 8.0 / last.as_secs_f64()
        };
        let mut base = crate::zuc_accel::ZucAccelerator::new(params);
        let mut cached = BatchedZucAccelerator::new(params, 1, true);
        let mut batched = BatchedZucAccelerator::new(params, 8, true);
        let t_base = throughput(&mut base, payload + REQUEST_HEADER_BYTES as u32);
        let t_cached = throughput(&mut cached, payload + COMPACT_HEADER_BYTES as u32);
        let t_batched = throughput(&mut batched, payload + COMPACT_HEADER_BYTES as u32);
        assert!(
            t_cached > t_base,
            "key cache must help: {t_cached:.2e} vs {t_base:.2e}"
        );
        assert!(t_batched > t_cached, "batching must help more");
    }

    #[test]
    fn large_requests_unaffected_by_batching() {
        // At large sizes the stream time dominates; extensions change little.
        let params = AccelParams::default();
        let mut base = BatchedZucAccelerator::new(params, 1, false);
        let mut ext = BatchedZucAccelerator::new(params, 8, true);
        let (a, _) = base.process_message(8192 + 64, SimTime::ZERO);
        let (b, _) = ext.process_message(8192 + 16, SimTime::ZERO);
        let ratio = a.as_secs_f64() / b.as_secs_f64();
        assert!((0.95..1.1).contains(&ratio), "ratio {ratio}");
    }
}
