//! Property-based tests: the cuckoo table behaves exactly like a map under
//! arbitrary operation sequences, within its capacity envelope.

use std::collections::HashMap;

use proptest::prelude::*;

use fld_cuckoo::{CuckooTable, InsertOutcome};

#[derive(Debug, Clone)]
enum Op {
    Insert(u16, u32),
    Remove(u16),
    Get(u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u16>(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k % 512, v)),
        any::<u16>().prop_map(|k| Op::Remove(k % 512)),
        any::<u16>().prop_map(|k| Op::Get(k % 512)),
    ]
}

proptest! {
    /// Model equivalence against HashMap under arbitrary op sequences.
    #[test]
    fn behaves_like_a_map(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        let mut table: CuckooTable<u16, u32> = CuckooTable::with_capacity(512);
        let mut model: HashMap<u16, u32> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    // Capacity 512 with keys drawn from 0..512 can never
                    // stall (the table is provisioned at load factor 1/2).
                    prop_assert!(table.insert(k, v).is_inserted());
                    model.insert(k, v);
                }
                Op::Remove(k) => {
                    prop_assert_eq!(table.remove(&k), model.remove(&k));
                }
                Op::Get(k) => {
                    prop_assert_eq!(table.get(&k).copied(), model.get(&k).copied());
                }
            }
            prop_assert_eq!(table.len(), model.len());
        }
        // Final full sweep.
        for k in 0u16..512 {
            prop_assert_eq!(table.get(&k).copied(), model.get(&k).copied());
        }
    }

    /// Any set of up to `capacity` distinct keys always fits (the load
    /// factor 1/2 + stash convergence guarantee of § 5.2).
    #[test]
    fn capacity_always_fits(keys in proptest::collection::hash_set(any::<u64>(), 1..256)) {
        let mut table: CuckooTable<u64, u64> = CuckooTable::with_capacity(256);
        for (i, k) in keys.iter().enumerate() {
            let outcome = table.insert(*k, i as u64);
            prop_assert!(outcome.is_inserted(), "stall at entry {i}");
        }
        for (i, k) in keys.iter().enumerate() {
            prop_assert_eq!(table.get(k), Some(&(i as u64)));
        }
    }

    /// Insert/remove cycles leave no residue.
    #[test]
    fn churn_is_clean(rounds in 1usize..50, keys in proptest::collection::vec(any::<u32>(), 1..32)) {
        let mut table: CuckooTable<u32, u32> = CuckooTable::with_capacity(64);
        for r in 0..rounds {
            for k in &keys {
                let _ = table.insert(*k, r as u32);
            }
            for k in &keys {
                table.remove(k);
            }
        }
        prop_assert!(table.is_empty());
        prop_assert_eq!(table.stash_len(), 0);
    }

    /// Replacement keeps exactly one value per key.
    #[test]
    fn replacement_semantics(k: u64, vals in proptest::collection::vec(any::<u64>(), 1..20)) {
        let mut table: CuckooTable<u64, u64> = CuckooTable::with_capacity(8);
        for v in &vals {
            prop_assert_eq!(table.insert(k, *v), InsertOutcome::Inserted);
        }
        prop_assert_eq!(table.len(), 1);
        prop_assert_eq!(table.get(&k), vals.last());
    }
}
