//! # fld-cuckoo — four-bank cuckoo hash table with a stash
//!
//! The hardware hash table behind FlexDriver's Tx address-translation layer
//! (paper § 5.2): *"We use a 4-bank cuckoo hash-table (load factor ½) to
//! store a shared pool of N_txdesc descriptors. … when an inserted new entry
//! collides, it evicts some old entry to a stash (containing four entries).
//! The stash then tries to insert the evicted entry to another bank, and the
//! process proceeds till success. If the stash fills up, insertion of a new
//! entry stalls till some entry is released. To prevent backpressure, we
//! double the table size, guaranteeing convergence."*
//!
//! This crate implements exactly that structure in software:
//!
//! * four banks, each addressed by an independent hash function;
//! * a configurable capacity provisioned at load factor ½ (slots = 2 ×
//!   capacity), as the paper mandates;
//! * a four-entry stash holding displaced entries between insertions;
//! * insertion back-pressure ([`InsertOutcome::Stalled`]) when the stash is
//!   full — the condition that stalls the FLD pipeline in hardware.
//!
//! # Examples
//!
//! ```
//! use fld_cuckoo::CuckooTable;
//!
//! let mut t: CuckooTable<u64, u32> = CuckooTable::with_capacity(128);
//! for i in 0..128 {
//!     assert!(t.insert(i, i as u32 * 2).is_inserted());
//! }
//! assert_eq!(t.get(&5), Some(&10));
//! assert_eq!(t.remove(&5), Some(10));
//! assert_eq!(t.get(&5), None);
//! assert_eq!(t.len(), 127);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;
use std::hash::{Hash, Hasher};

/// Number of banks, fixed by the hardware design.
pub const NUM_BANKS: usize = 4;

/// Stash capacity, fixed by the hardware design.
pub const STASH_SIZE: usize = 4;

/// Maximum displacement steps attempted during a single insertion before
/// the entry is parked in the stash.
const MAX_KICKS: usize = 32;

/// Result of an insertion attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The key was stored in a bank (or replaced an existing value).
    Inserted,
    /// The key was stored, but an entry now waits in the stash.
    InsertedViaStash,
    /// The stash is full: the pipeline must stall until a removal frees
    /// space. The entry was **not** stored.
    Stalled,
}

impl InsertOutcome {
    /// Whether the entry was stored.
    pub fn is_inserted(self) -> bool {
        !matches!(self, InsertOutcome::Stalled)
    }
}

#[derive(Debug, Clone)]
struct Slot<K, V> {
    key: K,
    value: V,
}

/// A four-bank cuckoo hash table with a four-entry stash.
///
/// See the [crate-level documentation](crate) for the hardware rationale.
pub struct CuckooTable<K, V> {
    banks: Vec<Vec<Option<Slot<K, V>>>>,
    bank_slots: usize,
    stash: Vec<Slot<K, V>>,
    len: usize,
    seeds: [u64; NUM_BANKS],
    displacements: u64,
    stalls: u64,
}

impl<K: fmt::Debug, V: fmt::Debug> fmt::Debug for CuckooTable<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CuckooTable")
            .field("len", &self.len)
            .field("bank_slots", &self.bank_slots)
            .field("stash_len", &self.stash.len())
            .field("displacements", &self.displacements)
            .finish()
    }
}

fn mix64(mut x: u64) -> u64 {
    // SplitMix64 finalizer: a strong 64-bit mixer.
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[derive(Default)]
struct FxHasher(u64);

impl Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0.rotate_left(5) ^ b as u64).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }
}

impl<K: Hash + Eq + Clone, V> CuckooTable<K, V> {
    /// Creates a table able to hold `capacity` entries at the paper's ½ load
    /// factor: the banks together provide at least `2 × capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        let bank_slots = (2 * capacity).div_ceil(NUM_BANKS).next_power_of_two();
        CuckooTable {
            banks: (0..NUM_BANKS)
                .map(|_| {
                    let mut v = Vec::with_capacity(bank_slots);
                    v.resize_with(bank_slots, || None);
                    v
                })
                .collect(),
            bank_slots,
            stash: Vec::with_capacity(STASH_SIZE),
            len: 0,
            seeds: [0x9E37_79B9, 0x85EB_CA6B, 0xC2B2_AE35, 0x27D4_EB2F],
            displacements: 0,
            stalls: 0,
        }
    }

    fn hash_key(&self, key: &K, bank: usize) -> usize {
        let mut h = FxHasher::default();
        key.hash(&mut h);
        (mix64(h.finish() ^ self.seeds[bank]) as usize) & (self.bank_slots - 1)
    }

    /// Number of stored entries (including stash residents).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Entries currently parked in the stash.
    pub fn stash_len(&self) -> usize {
        self.stash.len()
    }

    /// Total number of displacement (eviction) steps performed.
    pub fn displacements(&self) -> u64 {
        self.displacements
    }

    /// Number of insertions rejected because the stash was full.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Total slot count across banks (excluding the stash).
    pub fn slot_count(&self) -> usize {
        self.bank_slots * NUM_BANKS
    }

    /// Current load factor over bank slots.
    pub fn load_factor(&self) -> f64 {
        (self.len.saturating_sub(self.stash.len())) as f64 / self.slot_count() as f64
    }

    /// Looks up a key.
    pub fn get(&self, key: &K) -> Option<&V> {
        for bank in 0..NUM_BANKS {
            let idx = self.hash_key(key, bank);
            if let Some(slot) = &self.banks[bank][idx] {
                if slot.key == *key {
                    return Some(&slot.value);
                }
            }
        }
        self.stash.iter().find(|s| s.key == *key).map(|s| &s.value)
    }

    /// Looks up a key, returning a mutable reference to its value.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        for bank in 0..NUM_BANKS {
            let idx = self.hash_key(key, bank);
            // Split the borrow to appease the borrow checker.
            if self.banks[bank][idx]
                .as_ref()
                .is_some_and(|s| s.key == *key)
            {
                return self.banks[bank][idx].as_mut().map(|s| &mut s.value);
            }
        }
        self.stash
            .iter_mut()
            .find(|s| s.key == *key)
            .map(|s| &mut s.value)
    }

    /// Whether the key is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Inserts or replaces an entry. See [`InsertOutcome`] for the possible
    /// results; on [`InsertOutcome::Stalled`] the entry was not stored and
    /// the caller must retry after removing something (this is the
    /// hardware's pipeline-stall condition).
    pub fn insert(&mut self, key: K, value: V) -> InsertOutcome {
        // Replace in place if present.
        if let Some(v) = self.get_mut(&key) {
            *v = value;
            return InsertOutcome::Inserted;
        }
        if self.stash.len() >= STASH_SIZE {
            // The paper: "If the stash fills up, insertion of a new entry
            // stalls till some entry is released."
            self.stalls += 1;
            return InsertOutcome::Stalled;
        }
        self.len += 1;
        match self.place(Slot { key, value }) {
            None => {
                // Placement may have freed room to re-home stash residents.
                self.drain_stash();
                if self.stash.is_empty() {
                    InsertOutcome::Inserted
                } else {
                    InsertOutcome::InsertedViaStash
                }
            }
            Some(displaced) => {
                self.stash.push(displaced);
                InsertOutcome::InsertedViaStash
            }
        }
    }

    /// Attempts to place `slot`, displacing entries for up to `MAX_KICKS`
    /// steps. Returns the entry left homeless, if any.
    fn place(&mut self, mut slot: Slot<K, V>) -> Option<Slot<K, V>> {
        // First pass: any empty slot among the four candidate buckets.
        for bank in 0..NUM_BANKS {
            let idx = self.hash_key(&slot.key, bank);
            if self.banks[bank][idx].is_none() {
                self.banks[bank][idx] = Some(slot);
                return None;
            }
        }
        // Displacement chain: kick occupants between banks.
        let mut bank = (mix64(self.displacements ^ 0xA5A5) as usize) % NUM_BANKS;
        for _ in 0..MAX_KICKS {
            let idx = self.hash_key(&slot.key, bank);
            let displaced = self.banks[bank][idx].replace(slot).expect("occupied slot");
            self.displacements += 1;
            slot = displaced;
            // Try the displaced entry's remaining buckets.
            for b in 0..NUM_BANKS {
                if b == bank {
                    continue;
                }
                let i = self.hash_key(&slot.key, b);
                if self.banks[b][i].is_none() {
                    self.banks[b][i] = Some(slot);
                    return None;
                }
            }
            // Move on: kick from a different bank next round.
            bank = (bank + 1) % NUM_BANKS;
        }
        Some(slot)
    }

    /// Tries to re-home stash residents into banks.
    fn drain_stash(&mut self) {
        let mut i = 0;
        while i < self.stash.len() {
            let mut placed = false;
            for bank in 0..NUM_BANKS {
                let idx = self.hash_key(&self.stash[i].key, bank);
                if self.banks[bank][idx].is_none() {
                    let slot = self.stash.swap_remove(i);
                    self.banks[bank][idx] = Some(slot);
                    placed = true;
                    break;
                }
            }
            if !placed {
                i += 1;
            }
        }
    }

    /// Removes a key, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        for bank in 0..NUM_BANKS {
            let idx = self.hash_key(key, bank);
            if self.banks[bank][idx]
                .as_ref()
                .is_some_and(|s| s.key == *key)
            {
                let slot = self.banks[bank][idx].take().expect("checked above");
                self.len -= 1;
                self.drain_stash();
                return Some(slot.value);
            }
        }
        if let Some(pos) = self.stash.iter().position(|s| s.key == *key) {
            let slot = self.stash.swap_remove(pos);
            self.len -= 1;
            return Some(slot.value);
        }
        None
    }

    /// Iterates over all `(key, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> + '_ {
        self.banks
            .iter()
            .flatten()
            .filter_map(|s| s.as_ref())
            .chain(self.stash.iter())
            .map(|s| (&s.key, &s.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn basic_insert_get_remove() {
        let mut t = CuckooTable::with_capacity(16);
        assert!(t.insert("a", 1).is_inserted());
        assert!(t.insert("b", 2).is_inserted());
        assert_eq!(t.get(&"a"), Some(&1));
        assert_eq!(t.get(&"b"), Some(&2));
        assert_eq!(t.get(&"c"), None);
        assert_eq!(t.remove(&"a"), Some(1));
        assert_eq!(t.get(&"a"), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn replaces_existing_value() {
        let mut t = CuckooTable::with_capacity(8);
        t.insert(1u64, "x");
        assert_eq!(t.insert(1u64, "y"), InsertOutcome::Inserted);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&1), Some(&"y"));
    }

    #[test]
    fn holds_capacity_entries_at_half_load() {
        // The paper provisions the table at load factor 1/2 precisely so a
        // full capacity's worth of entries always converges.
        let n = 1133; // N_txdesc from Table 2a
        let mut t = CuckooTable::with_capacity(n);
        for i in 0..n as u64 {
            assert!(t.insert(i, i).is_inserted(), "stalled at {i}");
        }
        assert_eq!(t.len(), n);
        for i in 0..n as u64 {
            assert_eq!(t.get(&i), Some(&i));
        }
        assert!(t.load_factor() <= 0.5 + 1e-9);
    }

    #[test]
    fn get_mut_updates() {
        let mut t = CuckooTable::with_capacity(8);
        t.insert(7u32, 0u32);
        *t.get_mut(&7).unwrap() += 41;
        assert_eq!(t.get(&7), Some(&41));
        assert_eq!(t.get_mut(&8), None);
    }

    #[test]
    fn mirror_of_hashmap_under_churn() {
        let mut t = CuckooTable::with_capacity(256);
        let mut m = HashMap::new();
        let mut x: u64 = 0x12345;
        for step in 0..10_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = x % 400;
            if step % 3 == 0 {
                assert_eq!(t.remove(&key), m.remove(&key), "step {step} key {key}");
            } else if t.insert(key, step).is_inserted() {
                m.insert(key, step);
            } else {
                // Stall: the model table must also be over capacity.
                assert!(m.len() >= 256, "unexpected stall at {} entries", m.len());
            }
        }
        assert_eq!(t.len(), m.len());
        for (k, v) in &m {
            assert_eq!(t.get(k), Some(v));
        }
        let collected: HashMap<u64, u64> = t.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(collected, m);
    }

    #[test]
    fn stash_backpressure_and_release() {
        // Overfill a tiny table until it stalls, then free entries and retry.
        let mut t = CuckooTable::with_capacity(4);
        let mut stored = Vec::new();
        let mut stalled_at = None;
        for i in 0..10_000u64 {
            match t.insert(i, i) {
                InsertOutcome::Stalled => {
                    stalled_at = Some(i);
                    break;
                }
                _ => stored.push(i),
            }
        }
        let first_fail = stalled_at.expect("tiny table must eventually stall");
        assert!(t.stalls() >= 1);
        // Everything accepted must still be readable.
        for k in &stored {
            assert_eq!(t.get(k), Some(k));
        }
        // Release one entry; insertion must succeed again.
        let victim = stored[0];
        assert_eq!(t.remove(&victim), Some(victim));
        assert!(t.insert(first_fail, first_fail).is_inserted());
        assert_eq!(t.get(&first_fail), Some(&first_fail));
    }

    #[test]
    fn stash_is_searched_by_get() {
        let mut t = CuckooTable::with_capacity(4);
        let mut keys = Vec::new();
        for i in 0..10_000u64 {
            if !t.insert(i, i).is_inserted() {
                break;
            }
            keys.push(i);
        }
        if t.stash_len() > 0 {
            // All keys remain visible even while stash-resident.
            for k in &keys {
                assert_eq!(t.get(k), Some(k), "key {k} lost (stash resident?)");
            }
        }
    }

    #[test]
    fn len_counts_stash_entries() {
        let mut t = CuckooTable::with_capacity(4);
        let mut inserted = 0usize;
        for i in 0..10_000u64 {
            if !t.insert(i, i).is_inserted() {
                break;
            }
            inserted += 1;
        }
        assert_eq!(t.len(), inserted);
        assert_eq!(t.iter().count(), inserted);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        let _: CuckooTable<u8, u8> = CuckooTable::with_capacity(0);
    }
}
