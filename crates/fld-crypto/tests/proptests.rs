//! Property-based tests for the cryptographic primitives.

use proptest::prelude::*;

use fld_crypto::base64url;
use fld_crypto::hmac::{hmac_sha256, verify_hmac_sha256};
use fld_crypto::jwt;
use fld_crypto::sha256::{sha256, Sha256};
use fld_crypto::zuc::{eea3, eia3, Zuc};

proptest! {
    /// Incremental SHA-256 equals one-shot for arbitrary chunkings.
    #[test]
    fn sha256_chunking_invariant(
        data in proptest::collection::vec(any::<u8>(), 0..1024),
        cuts in proptest::collection::vec(any::<u16>(), 0..6),
    ) {
        let mut offsets: Vec<usize> =
            cuts.iter().map(|c| *c as usize % (data.len() + 1)).collect();
        offsets.sort_unstable();
        let mut h = Sha256::new();
        let mut prev = 0;
        for off in offsets {
            h.update(&data[prev..off]);
            prev = off;
        }
        h.update(&data[prev..]);
        prop_assert_eq!(h.finish(), sha256(&data));
    }

    /// Distinct messages produce distinct digests (collision smoke test).
    #[test]
    fn sha256_distinguishes(mut data in proptest::collection::vec(any::<u8>(), 1..256),
                            flip in any::<u16>()) {
        let original = sha256(&data);
        let idx = flip as usize % data.len();
        data[idx] ^= 1 << (flip % 8);
        prop_assert_ne!(sha256(&data), original);
    }

    /// HMAC verification accepts genuine MACs and rejects tampered ones.
    #[test]
    fn hmac_verify_consistency(
        key in proptest::collection::vec(any::<u8>(), 0..100),
        msg in proptest::collection::vec(any::<u8>(), 0..256),
        tamper: u8,
    ) {
        let mac = hmac_sha256(&key, &msg);
        prop_assert!(verify_hmac_sha256(&key, &msg, &mac));
        let mut bad = mac;
        bad[tamper as usize % 32] ^= 0x80;
        prop_assert!(!verify_hmac_sha256(&key, &msg, &bad));
    }

    /// base64url round-trips arbitrary bytes.
    #[test]
    fn base64url_round_trip(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let encoded = base64url::encode(&data);
        prop_assert_eq!(base64url::decode(&encoded).unwrap(), data);
    }

    /// JWTs sign/verify for arbitrary claims and keys; wrong keys fail.
    #[test]
    fn jwt_round_trip(
        claims in proptest::collection::vec(any::<u8>(), 0..200),
        key in proptest::collection::vec(any::<u8>(), 1..64),
        other_key in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let token = jwt::sign(&claims, &key);
        prop_assert_eq!(jwt::verify(&token, &key).unwrap(), claims);
        if other_key != key {
            prop_assert!(jwt::verify(&token, &other_key).is_err());
        }
    }

    /// 128-EEA3 is an involution for arbitrary inputs and parameters.
    #[test]
    fn eea3_involution(
        key: [u8; 16],
        count: u32,
        bearer in 0u8..32,
        direction in 0u8..2,
        data in proptest::collection::vec(any::<u8>(), 1..512),
    ) {
        let mut buf = data.clone();
        let bits = buf.len() * 8;
        eea3(&key, count, bearer, direction, bits, &mut buf);
        prop_assert_ne!(&buf, &data, "keystream must not be identity");
        eea3(&key, count, bearer, direction, bits, &mut buf);
        prop_assert_eq!(buf, data);
    }

    /// EEA3 keystream differs across counts (no IV reuse across PDUs).
    #[test]
    fn eea3_count_separation(key: [u8; 16], count: u32) {
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        eea3(&key, count, 0, 0, 512, &mut a);
        eea3(&key, count.wrapping_add(1), 0, 0, 512, &mut b);
        prop_assert_ne!(a, b);
    }

    /// EIA3 MACs change under any single-bit message flip.
    #[test]
    fn eia3_integrity(
        key: [u8; 16],
        count: u32,
        data in proptest::collection::vec(any::<u8>(), 1..128),
        flip: u16,
    ) {
        let bits = data.len() * 8;
        let mac = eia3(&key, count, 0, 0, bits, &data);
        let mut tampered = data.clone();
        let idx = flip as usize % data.len();
        tampered[idx] ^= 1 << (flip % 8);
        prop_assert_ne!(eia3(&key, count, 0, 0, bits, &tampered), mac);
    }

    /// The raw ZUC keystream is deterministic in (key, iv) and differs
    /// across either.
    #[test]
    fn zuc_keystream_determinism(key: [u8; 16], iv: [u8; 16]) {
        let mut a = Zuc::new(&key, &iv);
        let mut b = Zuc::new(&key, &iv);
        for _ in 0..8 {
            prop_assert_eq!(a.next_word(), b.next_word());
        }
        let mut iv2 = iv;
        iv2[15] ^= 1;
        let mut c = Zuc::new(&key, &iv2);
        let mut a = Zuc::new(&key, &iv);
        prop_assert_ne!(a.next_word(), c.next_word());
    }
}
