//! The ZUC stream cipher and the LTE algorithms built on it: 128-EEA3
//! (confidentiality) and 128-EIA3 (integrity), per ETSI/SAGE specification
//! version 1.6 — the workload of the paper's disaggregated LTE cipher
//! accelerator (§ 7).

/// The S0 S-box from the ZUC specification.
const S0: [u8; 256] = [
    0x3e, 0x72, 0x5b, 0x47, 0xca, 0xe0, 0x00, 0x33, 0x04, 0xd1, 0x54, 0x98, 0x09, 0xb9, 0x6d, 0xcb,
    0x7b, 0x1b, 0xf9, 0x32, 0xaf, 0x9d, 0x6a, 0xa5, 0xb8, 0x2d, 0xfc, 0x1d, 0x08, 0x53, 0x03, 0x90,
    0x4d, 0x4e, 0x84, 0x99, 0xe4, 0xce, 0xd9, 0x91, 0xdd, 0xb6, 0x85, 0x48, 0x8b, 0x29, 0x6e, 0xac,
    0xcd, 0xc1, 0xf8, 0x1e, 0x73, 0x43, 0x69, 0xc6, 0xb5, 0xbd, 0xfd, 0x39, 0x63, 0x20, 0xd4, 0x38,
    0x76, 0x7d, 0xb2, 0xa7, 0xcf, 0xed, 0x57, 0xc5, 0xf3, 0x2c, 0xbb, 0x14, 0x21, 0x06, 0x55, 0x9b,
    0xe3, 0xef, 0x5e, 0x31, 0x4f, 0x7f, 0x5a, 0xa4, 0x0d, 0x82, 0x51, 0x49, 0x5f, 0xba, 0x58, 0x1c,
    0x4a, 0x16, 0xd5, 0x17, 0xa8, 0x92, 0x24, 0x1f, 0x8c, 0xff, 0xd8, 0xae, 0x2e, 0x01, 0xd3, 0xad,
    0x3b, 0x4b, 0xda, 0x46, 0xeb, 0xc9, 0xde, 0x9a, 0x8f, 0x87, 0xd7, 0x3a, 0x80, 0x6f, 0x2f, 0xc8,
    0xb1, 0xb4, 0x37, 0xf7, 0x0a, 0x22, 0x13, 0x28, 0x7c, 0xcc, 0x3c, 0x89, 0xc7, 0xc3, 0x96, 0x56,
    0x07, 0xbf, 0x7e, 0xf0, 0x0b, 0x2b, 0x97, 0x52, 0x35, 0x41, 0x79, 0x61, 0xa6, 0x4c, 0x10, 0xfe,
    0xbc, 0x26, 0x95, 0x88, 0x8a, 0xb0, 0xa3, 0xfb, 0xc0, 0x18, 0x94, 0xf2, 0xe1, 0xe5, 0xe9, 0x5d,
    0xd0, 0xdc, 0x11, 0x66, 0x64, 0x5c, 0xec, 0x59, 0x42, 0x75, 0x12, 0xf5, 0x74, 0x9c, 0xaa, 0x23,
    0x0e, 0x86, 0xab, 0xbe, 0x2a, 0x02, 0xe7, 0x67, 0xe6, 0x44, 0xa2, 0x6c, 0xc2, 0x93, 0x9f, 0xf1,
    0xf6, 0xfa, 0x36, 0xd2, 0x50, 0x68, 0x9e, 0x62, 0x71, 0x15, 0x3d, 0xd6, 0x40, 0xc4, 0xe2, 0x0f,
    0x8e, 0x83, 0x77, 0x6b, 0x25, 0x05, 0x3f, 0x0c, 0x30, 0xea, 0x70, 0xb7, 0xa1, 0xe8, 0xa9, 0x65,
    0x8d, 0x27, 0x1a, 0xdb, 0x81, 0xb3, 0xa0, 0xf4, 0x45, 0x7a, 0x19, 0xdf, 0xee, 0x78, 0x34, 0x60,
];

/// The S1 S-box from the ZUC specification.
const S1: [u8; 256] = [
    0x55, 0xc2, 0x63, 0x71, 0x3b, 0xc8, 0x47, 0x86, 0x9f, 0x3c, 0xda, 0x5b, 0x29, 0xaa, 0xfd, 0x77,
    0x8c, 0xc5, 0x94, 0x0c, 0xa6, 0x1a, 0x13, 0x00, 0xe3, 0xa8, 0x16, 0x72, 0x40, 0xf9, 0xf8, 0x42,
    0x44, 0x26, 0x68, 0x96, 0x81, 0xd9, 0x45, 0x3e, 0x10, 0x76, 0xc6, 0xa7, 0x8b, 0x39, 0x43, 0xe1,
    0x3a, 0xb5, 0x56, 0x2a, 0xc0, 0x6d, 0xb3, 0x05, 0x22, 0x66, 0xbf, 0xdc, 0x0b, 0xfa, 0x62, 0x48,
    0xdd, 0x20, 0x11, 0x06, 0x36, 0xc9, 0xc1, 0xcf, 0xf6, 0x27, 0x52, 0xbb, 0x69, 0xf5, 0xd4, 0x87,
    0x7f, 0x84, 0x4c, 0xd2, 0x9c, 0x57, 0xa4, 0xbc, 0x4f, 0x9a, 0xdf, 0xfe, 0xd6, 0x8d, 0x7a, 0xeb,
    0x2b, 0x53, 0xd8, 0x5c, 0xa1, 0x14, 0x17, 0xfb, 0x23, 0xd5, 0x7d, 0x30, 0x67, 0x73, 0x08, 0x09,
    0xee, 0xb7, 0x70, 0x3f, 0x61, 0xb2, 0x19, 0x8e, 0x4e, 0xe5, 0x4b, 0x93, 0x8f, 0x5d, 0xdb, 0xa9,
    0xad, 0xf1, 0xae, 0x2e, 0xcb, 0x0d, 0xfc, 0xf4, 0x2d, 0x46, 0x6e, 0x1d, 0x97, 0xe8, 0xd1, 0xe9,
    0x4d, 0x37, 0xa5, 0x75, 0x5e, 0x83, 0x9e, 0xab, 0x82, 0x9d, 0xb9, 0x1c, 0xe0, 0xcd, 0x49, 0x89,
    0x01, 0xb6, 0xbd, 0x58, 0x24, 0xa2, 0x5f, 0x38, 0x78, 0x99, 0x15, 0x90, 0x50, 0xb8, 0x95, 0xe4,
    0xd0, 0x91, 0xc7, 0xce, 0xed, 0x0f, 0xb4, 0x6f, 0xa0, 0xcc, 0xf0, 0x02, 0x4a, 0x79, 0xc3, 0xde,
    0xa3, 0xef, 0xea, 0x51, 0xe6, 0x6b, 0x18, 0xec, 0x1b, 0x2c, 0x80, 0xf7, 0x74, 0xe7, 0xff, 0x21,
    0x5a, 0x6a, 0x54, 0x1e, 0x41, 0x31, 0x92, 0x35, 0xc4, 0x33, 0x07, 0x0a, 0xba, 0x7e, 0x0e, 0x34,
    0x88, 0xb1, 0x98, 0x7c, 0xf3, 0x3d, 0x60, 0x6c, 0x7b, 0xca, 0xd3, 0x1f, 0x32, 0x65, 0x04, 0x28,
    0x64, 0xbe, 0x85, 0x9b, 0x2f, 0x59, 0x8a, 0xd7, 0xb0, 0x25, 0xac, 0xaf, 0x12, 0x03, 0xe2, 0xf2,
];

/// Key-loading constants `d_0 … d_15` (15-bit each).
const D: [u16; 16] = [
    0x44D7, 0x26BC, 0x626B, 0x135E, 0x5789, 0x35E2, 0x7135, 0x09AF, 0x4D78, 0x2F13, 0x6BC4, 0x1AF1,
    0x5E26, 0x3C4D, 0x789A, 0x47AC,
];

/// The ZUC keystream generator.
///
/// # Examples
///
/// ```
/// use fld_crypto::zuc::Zuc;
///
/// // Test vector 1 from the ZUC specification: all-zero key and IV.
/// let mut z = Zuc::new(&[0u8; 16], &[0u8; 16]);
/// assert_eq!(z.next_word(), 0x27bede74);
/// assert_eq!(z.next_word(), 0x018082da);
/// ```
#[derive(Debug, Clone)]
pub struct Zuc {
    lfsr: [u32; 16],
    r1: u32,
    r2: u32,
}

fn add_mod_2p31m1(a: u32, b: u32) -> u32 {
    let s = a.wrapping_add(b);
    let s = (s & 0x7fff_ffff).wrapping_add(s >> 31);
    if s == 0 {
        // By convention the LFSR never holds 0; callers map 0 -> 2^31-1.
        0
    } else {
        s
    }
}

fn rot31(x: u32, k: u32) -> u32 {
    ((x << k) | (x >> (31 - k))) & 0x7fff_ffff
}

fn l1(x: u32) -> u32 {
    x ^ x.rotate_left(2) ^ x.rotate_left(10) ^ x.rotate_left(18) ^ x.rotate_left(24)
}

fn l2(x: u32) -> u32 {
    x ^ x.rotate_left(8) ^ x.rotate_left(14) ^ x.rotate_left(22) ^ x.rotate_left(30)
}

fn sbox(x: u32) -> u32 {
    let b = x.to_be_bytes();
    u32::from_be_bytes([
        S0[b[0] as usize],
        S1[b[1] as usize],
        S0[b[2] as usize],
        S1[b[3] as usize],
    ])
}

impl Zuc {
    /// Initializes the cipher with a 128-bit key and 128-bit IV.
    pub fn new(key: &[u8; 16], iv: &[u8; 16]) -> Self {
        let mut lfsr = [0u32; 16];
        for i in 0..16 {
            lfsr[i] = ((key[i] as u32) << 23) | ((D[i] as u32) << 8) | iv[i] as u32;
        }
        let mut z = Zuc { lfsr, r1: 0, r2: 0 };
        // 32 initialization rounds feeding W>>1 back into the LFSR.
        for _ in 0..32 {
            let (x0, x1, x2, _x3) = z.bit_reorg();
            let w = z.f(x0, x1, x2);
            z.lfsr_step(Some(w >> 1));
        }
        // One extra round discarding F's output.
        let (x0, x1, x2, _x3) = z.bit_reorg();
        z.f(x0, x1, x2);
        z.lfsr_step(None);
        z
    }

    fn bit_reorg(&self) -> (u32, u32, u32, u32) {
        let s = &self.lfsr;
        let x0 = ((s[15] & 0x7fff_8000) << 1) | (s[14] & 0xffff);
        let x1 = ((s[11] & 0xffff) << 16) | (s[9] >> 15);
        let x2 = ((s[7] & 0xffff) << 16) | (s[5] >> 15);
        let x3 = ((s[2] & 0xffff) << 16) | (s[0] >> 15);
        (x0, x1, x2, x3)
    }

    fn f(&mut self, x0: u32, x1: u32, x2: u32) -> u32 {
        let w = (x0 ^ self.r1).wrapping_add(self.r2);
        let w1 = self.r1.wrapping_add(x1);
        let w2 = self.r2 ^ x2;
        let u = l1((w1 << 16) | (w2 >> 16));
        let v = l2((w2 << 16) | (w1 >> 16));
        self.r1 = sbox(u);
        self.r2 = sbox(v);
        w
    }

    fn lfsr_step(&mut self, u: Option<u32>) {
        let s = &self.lfsr;
        let mut v = add_mod_2p31m1(rot31(s[15], 15), rot31(s[13], 17));
        v = add_mod_2p31m1(v, rot31(s[10], 21));
        v = add_mod_2p31m1(v, rot31(s[4], 20));
        v = add_mod_2p31m1(v, rot31(s[0], 8));
        v = add_mod_2p31m1(v, s[0]);
        if let Some(u) = u {
            v = add_mod_2p31m1(v, u);
        }
        if v == 0 {
            v = 0x7fff_ffff;
        }
        self.lfsr.copy_within(1.., 0);
        self.lfsr[15] = v;
    }

    /// Produces the next 32-bit keystream word.
    pub fn next_word(&mut self) -> u32 {
        let (x0, x1, x2, x3) = self.bit_reorg();
        let z = self.f(x0, x1, x2) ^ x3;
        self.lfsr_step(None);
        z
    }

    /// Fills `out` with keystream words.
    pub fn generate(&mut self, out: &mut [u32]) {
        for w in out {
            *w = self.next_word();
        }
    }
}

/// Builds the 128-EEA3/EIA3 IV from COUNT, BEARER and DIRECTION.
fn lte_iv_eea3(count: u32, bearer: u8, direction: u8) -> [u8; 16] {
    let c = count.to_be_bytes();
    let b5 = (bearer << 3) | (direction << 2);
    [
        c[0], c[1], c[2], c[3], b5, 0, 0, 0, c[0], c[1], c[2], c[3], b5, 0, 0, 0,
    ]
}

/// 128-EEA3: encrypts (or decrypts — the operation is an involution)
/// `length_bits` of `data` in place.
///
/// # Panics
///
/// Panics if `data` is shorter than `length_bits` requires, or if `bearer`
/// exceeds 5 bits / `direction` exceeds 1 bit.
///
/// # Examples
///
/// ```
/// use fld_crypto::zuc::eea3;
///
/// let key = [0x17u8; 16];
/// let mut buf = *b"confidential LTE payload";
/// let orig = buf;
/// eea3(&key, 7, 3, 0, buf.len() * 8, &mut buf);
/// assert_ne!(buf, orig);
/// eea3(&key, 7, 3, 0, buf.len() * 8, &mut buf);
/// assert_eq!(buf, orig);
/// ```
pub fn eea3(
    key: &[u8; 16],
    count: u32,
    bearer: u8,
    direction: u8,
    length_bits: usize,
    data: &mut [u8],
) {
    assert!(bearer < 32, "bearer is a 5-bit field");
    assert!(direction < 2, "direction is a 1-bit field");
    let nbytes = length_bits.div_ceil(8);
    assert!(data.len() >= nbytes, "data shorter than length");
    let iv = lte_iv_eea3(count, bearer, direction);
    let mut z = Zuc::new(key, &iv);
    let nwords = length_bits.div_ceil(32);
    for i in 0..nwords {
        let ks = z.next_word().to_be_bytes();
        for (j, k) in ks.iter().enumerate() {
            let idx = i * 4 + j;
            if idx < nbytes {
                data[idx] ^= k;
            }
        }
    }
    // Zero any bits beyond length in the final byte, per the spec.
    if !length_bits.is_multiple_of(8) {
        let keep = length_bits % 8;
        data[nbytes - 1] &= 0xffu8 << (8 - keep);
    }
}

/// 128-EIA3: computes the 32-bit MAC over `length_bits` of `data`.
///
/// # Panics
///
/// Panics on out-of-range `bearer`/`direction` or truncated `data`.
///
/// # Examples
///
/// ```
/// use fld_crypto::zuc::eia3;
///
/// // EIA3 test set 1: all-zero key, one zero bit of message.
/// let mac = eia3(&[0u8; 16], 0, 0, 0, 1, &[0u8]);
/// assert_eq!(mac, 0xc8a9595e);
/// ```
pub fn eia3(
    key: &[u8; 16],
    count: u32,
    bearer: u8,
    direction: u8,
    length_bits: usize,
    data: &[u8],
) -> u32 {
    assert!(bearer < 32, "bearer is a 5-bit field");
    assert!(direction < 2, "direction is a 1-bit field");
    assert!(
        data.len() >= length_bits.div_ceil(8),
        "data shorter than length"
    );
    let c = count.to_be_bytes();
    // EIA3's IV differs from EEA3's: direction lands in bits of IV[8]/IV[14].
    let iv = [
        c[0],
        c[1],
        c[2],
        c[3],
        bearer << 3,
        0,
        0,
        0,
        c[0] ^ (direction << 7),
        c[1],
        c[2],
        c[3],
        bearer << 3,
        0,
        (direction << 7),
        0,
    ];
    let mut zuc = Zuc::new(key, &iv);
    let l = length_bits.div_ceil(32) + 2;
    let mut z = vec![0u32; l];
    zuc.generate(&mut z);
    // z_i = the 32-bit word starting at keystream bit i.
    let word_at = |bit: usize| -> u32 {
        let w = bit / 32;
        let off = bit % 32;
        if off == 0 {
            z[w]
        } else {
            (z[w] << off) | (z[w + 1] >> (32 - off))
        }
    };
    let mut t: u32 = 0;
    for i in 0..length_bits {
        let byte = data[i / 8];
        if byte >> (7 - i % 8) & 1 == 1 {
            t ^= word_at(i);
        }
    }
    t ^= word_at(length_bits);
    t ^ z[l - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// ZUC keystream test vector 1 (spec §3.3): all-zero key and IV.
    #[test]
    fn keystream_all_zero() {
        let mut z = Zuc::new(&[0u8; 16], &[0u8; 16]);
        assert_eq!(z.next_word(), 0x27be_de74);
        assert_eq!(z.next_word(), 0x0180_82da);
    }

    /// ZUC keystream test vector 2: all-ff key and IV.
    #[test]
    fn keystream_all_ff() {
        let mut z = Zuc::new(&[0xffu8; 16], &[0xffu8; 16]);
        assert_eq!(z.next_word(), 0x0657_cfa0);
        assert_eq!(z.next_word(), 0x7096_398b);
    }

    /// ZUC keystream test vector 3: random key/IV from the specification.
    #[test]
    fn keystream_random_vector() {
        let key = [
            0x3d, 0x4c, 0x4b, 0xe9, 0x6a, 0x82, 0xfd, 0xae, 0xb5, 0x8f, 0x64, 0x1d, 0xb1, 0x7b,
            0x45, 0x5b,
        ];
        let iv = [
            0x84, 0x31, 0x9a, 0xa8, 0xde, 0x69, 0x15, 0xca, 0x1f, 0x6b, 0xda, 0x6b, 0xfb, 0xd8,
            0xc7, 0x66,
        ];
        let mut z = Zuc::new(&key, &iv);
        assert_eq!(z.next_word(), 0x14f1_c272);
        assert_eq!(z.next_word(), 0x3279_c419);
    }

    /// 128-EEA3 test set 1 from the EEA3/EIA3 specification.
    #[test]
    fn eea3_test_set_1() {
        let ck = [
            0x17, 0x3d, 0x14, 0xba, 0x50, 0x03, 0x73, 0x1d, 0x7a, 0x60, 0x04, 0x94, 0x70, 0xf0,
            0x0a, 0x29,
        ];
        let count = 0x6603_5492;
        let bearer = 0xf;
        let direction = 0;
        let length = 0xc1; // 193 bits
        let mut data: [u8; 28] = [
            0x6c, 0xf6, 0x53, 0x40, 0x73, 0x55, 0x52, 0xab, 0x0c, 0x97, 0x52, 0xfa, 0x6f, 0x90,
            0x25, 0xfe, 0x0b, 0xd6, 0x75, 0xd9, 0x00, 0x58, 0x75, 0xb2, 0x00, 0x00, 0x00, 0x00,
        ];
        let expect: [u8; 28] = [
            0xa6, 0xc8, 0x5f, 0xc6, 0x6a, 0xfb, 0x85, 0x33, 0xaa, 0xfc, 0x25, 0x18, 0xdf, 0xe7,
            0x84, 0x94, 0x0e, 0xe1, 0xe4, 0xb0, 0x30, 0x23, 0x8c, 0xc8, 0x00, 0x00, 0x00, 0x00,
        ];
        eea3(&ck, count, bearer, direction, length, &mut data);
        assert_eq!(data, expect);
    }

    /// 128-EIA3 test set 1: all-zero key, single zero bit.
    #[test]
    fn eia3_test_set_1() {
        let mac = eia3(&[0u8; 16], 0, 0, 0, 1, &[0]);
        assert_eq!(mac, 0xc8a9_595e);
    }

    /// 128-EIA3 test set 2: same zero key, direction 1, 90-bit message.
    #[test]
    fn eia3_test_set_2() {
        let ik = [
            0x47, 0x05, 0x41, 0x25, 0x56, 0x1e, 0xb2, 0xdd, 0xa9, 0x40, 0x59, 0xda, 0x05, 0x09,
            0x78, 0x50,
        ];
        let count = 0x561e_b2dd;
        let bearer = 0x14;
        let direction = 0;
        let length = 0x5a; // 90 bits
        let msg = [
            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
        ];
        assert_eq!(
            eia3(&ik, count, bearer, direction, length, &msg),
            0x6719_a088
        );
    }

    #[test]
    fn eea3_is_involution_for_various_lengths() {
        let key = [0x42u8; 16];
        for len in [1usize, 7, 8, 31, 32, 33, 64, 100, 512] {
            let nbytes = len.div_ceil(8);
            let mut data: Vec<u8> = (0..nbytes as u32).map(|i| (i * 13) as u8).collect();
            // Clear bits beyond length so the comparison is well-defined.
            if len % 8 != 0 {
                let last = data.len() - 1;
                data[last] &= 0xffu8 << (8 - len % 8);
            }
            let orig = data.clone();
            eea3(&key, 1, 2, 1, len, &mut data);
            eea3(&key, 1, 2, 1, len, &mut data);
            assert_eq!(data, orig, "length {len}");
        }
    }

    #[test]
    fn eia3_detects_bit_flips() {
        let key = [0x11u8; 16];
        let msg = b"authenticated message payload!!!";
        let mac = eia3(&key, 5, 1, 0, msg.len() * 8, msg);
        let mut tampered = *msg;
        tampered[3] ^= 0x20;
        assert_ne!(eia3(&key, 5, 1, 0, msg.len() * 8, &tampered), mac);
    }

    #[test]
    fn keystream_differs_across_ivs() {
        let key = [9u8; 16];
        let mut a = Zuc::new(&key, &[0u8; 16]);
        let mut b = Zuc::new(&key, &[1u8; 16]);
        assert_ne!(a.next_word(), b.next_word());
    }
}
