//! Unpadded base64url (RFC 4648 §5), the encoding of JWT segments.

use std::error::Error;
use std::fmt;

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_";

/// An error decoding base64url input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeBase64Error {
    /// A byte outside the base64url alphabet at the given position.
    InvalidByte(usize),
    /// The input length is impossible (`len % 4 == 1`).
    InvalidLength(usize),
}

impl fmt::Display for DecodeBase64Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeBase64Error::InvalidByte(pos) => write!(f, "invalid base64url byte at {pos}"),
            DecodeBase64Error::InvalidLength(len) => write!(f, "invalid base64url length {len}"),
        }
    }
}

impl Error for DecodeBase64Error {}

/// Encodes bytes as unpadded base64url.
///
/// # Examples
///
/// ```
/// use fld_crypto::base64url::{encode, decode};
///
/// assert_eq!(encode(b"hello"), "aGVsbG8");
/// assert_eq!(decode("aGVsbG8")?, b"hello");
/// # Ok::<(), fld_crypto::base64url::DecodeBase64Error>(())
/// ```
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let n = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(ALPHABET[(n >> 12) as usize & 63] as char);
        if chunk.len() > 1 {
            out.push(ALPHABET[(n >> 6) as usize & 63] as char);
        }
        if chunk.len() > 2 {
            out.push(ALPHABET[n as usize & 63] as char);
        }
    }
    out
}

fn decode_char(c: u8) -> Option<u8> {
    match c {
        b'A'..=b'Z' => Some(c - b'A'),
        b'a'..=b'z' => Some(c - b'a' + 26),
        b'0'..=b'9' => Some(c - b'0' + 52),
        b'-' => Some(62),
        b'_' => Some(63),
        _ => None,
    }
}

/// Decodes unpadded base64url input.
///
/// # Errors
///
/// Returns [`DecodeBase64Error`] for characters outside the alphabet or an
/// impossible input length.
pub fn decode(input: &str) -> Result<Vec<u8>, DecodeBase64Error> {
    let bytes = input.as_bytes();
    if bytes.len() % 4 == 1 {
        return Err(DecodeBase64Error::InvalidLength(bytes.len()));
    }
    let mut out = Vec::with_capacity(bytes.len() * 3 / 4);
    for (ci, chunk) in bytes.chunks(4).enumerate() {
        let mut n: u32 = 0;
        for (i, &c) in chunk.iter().enumerate() {
            let v = decode_char(c).ok_or(DecodeBase64Error::InvalidByte(ci * 4 + i))?;
            n |= (v as u32) << (18 - 6 * i);
        }
        out.push((n >> 16) as u8);
        if chunk.len() > 2 {
            out.push((n >> 8) as u8);
        }
        if chunk.len() > 3 {
            out.push(n as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4648_vectors() {
        assert_eq!(encode(b""), "");
        assert_eq!(encode(b"f"), "Zg");
        assert_eq!(encode(b"fo"), "Zm8");
        assert_eq!(encode(b"foo"), "Zm9v");
        assert_eq!(encode(b"foob"), "Zm9vYg");
        assert_eq!(encode(b"fooba"), "Zm9vYmE");
        assert_eq!(encode(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn round_trip_all_lengths() {
        for len in 0..64usize {
            let data: Vec<u8> = (0..len as u32).map(|i| (i * 37 + 11) as u8).collect();
            assert_eq!(decode(&encode(&data)).unwrap(), data, "len {len}");
        }
    }

    #[test]
    fn url_safe_chars_round_trip() {
        // 0xfb 0xff exercises '-' and '_' outputs.
        let data = [0xfbu8, 0xef, 0xff];
        let s = encode(&data);
        assert!(s
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_'));
        assert_eq!(decode(&s).unwrap(), data);
    }

    #[test]
    fn rejects_standard_base64_padding() {
        assert!(matches!(
            decode("Zg=="),
            Err(DecodeBase64Error::InvalidByte(2))
        ));
    }

    #[test]
    fn rejects_plus_and_slash() {
        assert!(decode("a+b").is_err());
        assert!(decode("a/b").is_err());
    }

    #[test]
    fn rejects_length_one_mod_four() {
        assert!(matches!(
            decode("abcde"),
            Err(DecodeBase64Error::InvalidLength(5))
        ));
    }
}
