//! # fld-crypto — from-scratch cryptography for the example accelerators
//!
//! The FlexDriver paper's three demo accelerators are built around real
//! cryptographic workloads. This crate implements each primitive from its
//! specification, with the published test vectors as unit tests:
//!
//! * [`zuc`] — the ZUC stream cipher and LTE 128-EEA3/128-EIA3 (ETSI/SAGE
//!   v1.6), the payload of the disaggregated LTE cipher accelerator;
//! * [`mod@sha256`] / [`hmac`] — FIPS 180-4 SHA-256 and RFC 2104 HMAC, used by
//!   the IoT token authentication offload;
//! * [`base64url`] / [`jwt`] — RFC 4648 §5 encoding and RFC 7519 JSON Web
//!   Tokens with HS256 signatures, the credential format those IoT messages
//!   carry.
//!
//! Everything here is pure safe Rust with zero dependencies; these are
//! reproduction substrates, not production cryptography (no side-channel
//! hardening beyond constant-time MAC comparison).
//!
//! # Examples
//!
//! ```
//! use fld_crypto::{jwt, zuc};
//!
//! // Sign and validate an IoT token.
//! let token = jwt::sign(br#"{"device":"d1"}"#, b"tenant-key");
//! assert!(jwt::verify(&token, b"tenant-key").is_ok());
//!
//! // Encrypt an LTE PDU.
//! let key = [7u8; 16];
//! let mut pdu = *b"voice payload";
//! zuc::eea3(&key, 1, 0, 0, pdu.len() * 8, &mut pdu);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod base64url;
pub mod hmac;
pub mod jwt;
pub mod sha256;
pub mod zuc;

pub use hmac::{hmac_sha256, verify_hmac_sha256};
pub use sha256::{sha256, Sha256};
pub use zuc::{eea3, eia3, Zuc};
