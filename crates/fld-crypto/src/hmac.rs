//! HMAC-SHA256 (RFC 2104), the signature scheme of the JSON Web Tokens
//! validated by the IoT authentication accelerator (paper § 7).

use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// Computes `HMAC-SHA256(key, message)`.
///
/// # Examples
///
/// ```
/// use fld_crypto::hmac::hmac_sha256;
///
/// // RFC 4231 test case 2.
/// let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
/// assert_eq!(mac[..4], [0x5b, 0xdc, 0xc1, 0x46]);
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    let mut key_block = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        let digest = crate::sha256::sha256(key);
        key_block[..DIGEST_LEN].copy_from_slice(&digest);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha256::new();
    let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finish();

    let mut outer = Sha256::new();
    let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finish()
}

/// Constant-time comparison of two MACs.
pub fn verify_hmac_sha256(key: &[u8], message: &[u8], mac: &[u8]) -> bool {
    let expect = hmac_sha256(key, message);
    if mac.len() != expect.len() {
        return false;
    }
    let mut diff = 0u8;
    for (a, b) in expect.iter().zip(mac) {
        diff |= a ^ b;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// RFC 4231 test case 1.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    /// RFC 4231 test case 2 (short key).
    #[test]
    fn rfc4231_case_2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    /// RFC 4231 test case 3 (key and data of 0xaa/0xdd).
    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        assert_eq!(
            hex(&hmac_sha256(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    /// RFC 4231 test case 6 (key longer than the block size).
    #[test]
    fn rfc4231_case_6() {
        let key = [0xaau8; 131];
        let mac = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let mac = hmac_sha256(b"key", b"msg");
        assert!(verify_hmac_sha256(b"key", b"msg", &mac));
        let mut bad = mac;
        bad[0] ^= 1;
        assert!(!verify_hmac_sha256(b"key", b"msg", &bad));
        assert!(!verify_hmac_sha256(b"key", b"msg", &mac[..31]));
        assert!(!verify_hmac_sha256(b"other", b"msg", &mac));
    }
}
