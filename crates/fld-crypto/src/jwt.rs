//! JSON Web Tokens (RFC 7519) with HS256 signatures — the credential the
//! IoT authentication accelerator extracts from CoAP messages and validates,
//! "dropping packets with invalid HMAC-SHA256 signature" (paper § 7).
//!
//! The accelerator's hardware does not run a general JSON parser; it scans
//! for the signature boundary and checks the HMAC. This module mirrors that:
//! signing/encoding is provided for test-traffic generation, while
//! [`verify`] performs only the structural split plus HMAC check the
//! hardware does.

use std::error::Error;
use std::fmt;

use crate::base64url;
use crate::hmac::{hmac_sha256, verify_hmac_sha256};

/// The fixed HS256 JOSE header: `{"alg":"HS256","typ":"JWT"}`.
pub const HEADER_JSON: &str = "{\"alg\":\"HS256\",\"typ\":\"JWT\"}";

/// An error validating a JWT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyJwtError {
    /// The token does not have exactly three dot-separated segments.
    Malformed,
    /// The signature segment is not valid base64url.
    BadSignatureEncoding,
    /// The HMAC-SHA256 signature does not verify.
    BadSignature,
}

impl fmt::Display for VerifyJwtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyJwtError::Malformed => write!(f, "token is not three segments"),
            VerifyJwtError::BadSignatureEncoding => write!(f, "signature is not base64url"),
            VerifyJwtError::BadSignature => write!(f, "signature verification failed"),
        }
    }
}

impl Error for VerifyJwtError {}

/// Signs a claims JSON string with HS256, producing a compact JWT.
///
/// # Examples
///
/// ```
/// use fld_crypto::jwt;
///
/// let token = jwt::sign(br"{'device':'sensor-1'}", b"tenant-key");
/// assert!(jwt::verify(&token, b"tenant-key").is_ok());
/// assert!(jwt::verify(&token, b"wrong-key").is_err());
/// ```
pub fn sign(claims_json: &[u8], key: &[u8]) -> String {
    let header = base64url::encode(HEADER_JSON.as_bytes());
    let payload = base64url::encode(claims_json);
    let signing_input = format!("{header}.{payload}");
    let mac = hmac_sha256(key, signing_input.as_bytes());
    format!("{signing_input}.{}", base64url::encode(&mac))
}

/// Verifies a compact JWT's HS256 signature and returns the decoded claims
/// bytes.
///
/// # Errors
///
/// Returns [`VerifyJwtError`] when the token is structurally invalid or the
/// signature does not match.
pub fn verify(token: &str, key: &[u8]) -> Result<Vec<u8>, VerifyJwtError> {
    let mut parts = token.split('.');
    let (header, payload, signature) =
        match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(h), Some(p), Some(s), None) => (h, p, s),
            _ => return Err(VerifyJwtError::Malformed),
        };
    let mac = base64url::decode(signature).map_err(|_| VerifyJwtError::BadSignatureEncoding)?;
    let signing_input_len = header.len() + 1 + payload.len();
    let signing_input = &token[..signing_input_len];
    if !verify_hmac_sha256(key, signing_input.as_bytes(), &mac) {
        return Err(VerifyJwtError::BadSignature);
    }
    base64url::decode(payload).map_err(|_| VerifyJwtError::Malformed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_round_trip() {
        let claims = br#"{"sub":"device-42","tenant":3}"#;
        let token = sign(claims, b"secret");
        let decoded = verify(&token, b"secret").unwrap();
        assert_eq!(decoded, claims);
    }

    #[test]
    fn wrong_key_rejected() {
        let token = sign(b"{}", b"k1");
        assert_eq!(verify(&token, b"k2"), Err(VerifyJwtError::BadSignature));
    }

    #[test]
    fn tampered_payload_rejected() {
        let token = sign(br#"{"amount":1}"#, b"k");
        // Replace the payload segment wholesale.
        let mut parts: Vec<&str> = token.split('.').collect();
        let forged = base64url::encode(br#"{"amount":9999}"#);
        parts[1] = &forged;
        let forged_token = parts.join(".");
        assert_eq!(
            verify(&forged_token, b"k"),
            Err(VerifyJwtError::BadSignature)
        );
    }

    #[test]
    fn malformed_tokens_rejected() {
        assert_eq!(
            verify("onlyonesegment", b"k"),
            Err(VerifyJwtError::Malformed)
        );
        assert_eq!(verify("a.b", b"k"), Err(VerifyJwtError::Malformed));
        assert_eq!(verify("a.b.c.d", b"k"), Err(VerifyJwtError::Malformed));
        assert_eq!(
            verify("a.b.!!!", b"k"),
            Err(VerifyJwtError::BadSignatureEncoding)
        );
    }

    #[test]
    fn header_is_standard() {
        let token = sign(b"{}", b"k");
        let header_seg = token.split('.').next().unwrap();
        assert_eq!(
            base64url::decode(header_seg).unwrap(),
            HEADER_JSON.as_bytes()
        );
    }
}
