//! Offline stand-in for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! The build environment has no network access to crates.io, so this
//! crate reimplements the subset of proptest the workspace's tests use:
//! the [`proptest!`] macro (both `arg in strategy` and plain `arg: Type`
//! parameters), [`Strategy`] with `prop_map`, integer/float range
//! strategies, `any::<T>()`, [`collection::vec`]/[`collection::hash_set`],
//! [`prop_oneof!`] and the `prop_assert*` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports its inputs (via the assert
//!   message and case seed) but is not minimized.
//! * **Deterministic.** Cases derive from a fixed seed plus the case
//!   index, so failures reproduce exactly across runs and machines. Set
//!   `PROPTEST_CASES` to change the case count (default 64).

pub mod arbitrary;
pub mod collection;
pub mod runner;
pub mod strategy;

pub use arbitrary::any;
pub use strategy::Strategy;

/// The commonly imported surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::runner::ProptestConfig;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests. Each function parameter is either
/// `pattern in strategy` or `name: Type` (shorthand for `any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    // A leading `#![proptest_config(...)]` is accepted and ignored: the
    // stand-in runner sizes case counts globally via PROPTEST_CASES.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { $($rest)* }
    };
    ($($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::runner::run(stringify!($name), |__proptest_rng| {
                    $crate::__proptest_bind!(__proptest_rng, $body, $($params)*)
                });
            }
        )*
    };
}

/// Internal: binds the parameter list of a [`proptest!`] function one
/// parameter at a time, then runs the body.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident, $body:block,) => { $body };
    ($rng:ident, $body:block) => { $body };
    ($rng:ident, $body:block, $pat:pat in $strat:expr) => {
        {
            let $pat = $crate::strategy::Strategy::generate(&($strat), $rng);
            $body
        }
    };
    ($rng:ident, $body:block, $pat:pat in $strat:expr, $($rest:tt)*) => {
        {
            let $pat = $crate::strategy::Strategy::generate(&($strat), $rng);
            $crate::__proptest_bind!($rng, $body, $($rest)*)
        }
    };
    ($rng:ident, $body:block, $name:ident : $ty:ty) => {
        {
            let $name = $crate::strategy::Strategy::generate(
                &$crate::arbitrary::any::<$ty>(), $rng);
            $body
        }
    };
    ($rng:ident, $body:block, $name:ident : $ty:ty, $($rest:tt)*) => {
        {
            let $name = $crate::strategy::Strategy::generate(
                &$crate::arbitrary::any::<$ty>(), $rng);
            $crate::__proptest_bind!($rng, $body, $($rest)*)
        }
    };
    ($rng:ident, $body:block, mut $name:ident : $ty:ty) => {
        {
            let mut $name = $crate::strategy::Strategy::generate(
                &$crate::arbitrary::any::<$ty>(), $rng);
            $body
        }
    };
    ($rng:ident, $body:block, mut $name:ident : $ty:ty, $($rest:tt)*) => {
        {
            let mut $name = $crate::strategy::Strategy::generate(
                &$crate::arbitrary::any::<$ty>(), $rng);
            $crate::__proptest_bind!($rng, $body, $($rest)*)
        }
    };
}

/// Chooses uniformly between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}
