//! `any::<T>()` — full-domain strategies for primitive types.

use std::marker::PhantomData;

use crate::runner::TestRng;
use crate::strategy::Strategy;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over the full domain of `T`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Creates the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only: property tests here exercise arithmetic,
        // not NaN propagation.
        rng.unit_f64() * 2e9 - 1e9
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut TestRng) -> Option<T> {
        if rng.next_u64() & 3 == 0 {
            None
        } else {
            Some(T::arbitrary(rng))
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32(rng.below(0xD800) as u32).unwrap_or('\u{fffd}')
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_domain_edges_eventually() {
        let mut rng = TestRng::from_seed(9);
        let mut small = false;
        let mut large = false;
        for _ in 0..10_000 {
            let v: u8 = any::<u8>().generate(&mut rng);
            small |= v < 8;
            large |= v > 247;
        }
        assert!(small && large);
    }
}
