//! Collection strategies: `vec` and `hash_set`.

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

use crate::runner::TestRng;
use crate::strategy::Strategy;

/// A length specification for collection strategies: a `Range`,
/// `RangeInclusive` or exact `usize`.
pub trait SizeRange {
    /// Picks a length.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty size range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
    }
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

/// Strategy for `Vec<T>` with lengths drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

/// Generates vectors of `element` values with a length in `size`.
pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}

impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `HashSet<T>`; sizes are best-effort (duplicates drawn
/// from `element` reduce the final size, as in the real crate).
#[derive(Debug, Clone)]
pub struct HashSetStrategy<S, R> {
    element: S,
    size: R,
}

/// Generates hash sets of `element` values with a target size in `size`.
pub fn hash_set<S, R>(element: S, size: R) -> HashSetStrategy<S, R>
where
    S: Strategy,
    S::Value: Hash + Eq,
    R: SizeRange,
{
    HashSetStrategy { element, size }
}

impl<S, R> Strategy for HashSetStrategy<S, R>
where
    S: Strategy,
    S::Value: Hash + Eq,
    R: SizeRange,
{
    type Value = HashSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let target = self.size.pick(rng);
        let mut set = HashSet::with_capacity(target);
        // Bounded attempts so narrow domains (e.g. any::<bool>()) cannot
        // loop forever.
        for _ in 0..target.saturating_mul(4).max(8) {
            if set.len() >= target {
                break;
            }
            set.insert(self.element.generate(rng));
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn vec_lengths_in_range() {
        let mut rng = TestRng::from_seed(4);
        for _ in 0..200 {
            let v = vec(any::<u8>(), 3..10).generate(&mut rng);
            assert!((3..10).contains(&v.len()));
        }
    }

    #[test]
    fn hash_set_unique() {
        let mut rng = TestRng::from_seed(5);
        let s = hash_set(any::<u64>(), 10..20).generate(&mut rng);
        assert!((10..20).contains(&s.len()));
    }
}
