//! Deterministic test-case runner and its random source.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Default number of cases per property (override with `PROPTEST_CASES`).
pub const DEFAULT_CASES: u32 = 64;

/// Accepted for source compatibility with `#![proptest_config(...)]`;
/// the stand-in runner takes its case count from `PROPTEST_CASES`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProptestConfig;

impl ProptestConfig {
    /// Builds a config requesting `cases` cases (advisory in the stand-in).
    pub fn with_cases(_cases: u32) -> Self {
        ProptestConfig
    }
}

/// The per-case random source handed to strategies.
///
/// SplitMix64: tiny, fast and identical on every platform, which keeps
/// property tests reproducible from `(test name, case index)` alone.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a raw seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; 0 when `bound` is 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift rejection-free mapping; the bias is far below
        // anything a property test can observe.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn configured_cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_CASES)
}

fn seed_of(name: &str, case: u32) -> u64 {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^ ((case as u64) << 32 | case as u64)
}

/// Runs `body` for each configured case with a case-specific [`TestRng`].
///
/// # Panics
///
/// Re-raises the body's panic, annotated with the failing case number so
/// the case reproduces via its deterministic seed.
pub fn run<F: FnMut(&mut TestRng)>(name: &str, mut body: F) {
    let cases = configured_cases();
    for case in 0..cases {
        let mut rng = TestRng::from_seed(seed_of(name, case));
        let result = catch_unwind(AssertUnwindSafe(|| body(&mut rng)));
        if let Err(panic) = result {
            eprintln!("proptest {name}: failed at case {case}/{cases} (deterministic seed)");
            resume_unwind(panic);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::from_seed(7);
        let mut b = TestRng::from_seed(7);
        assert_eq!(a.next_u64(), b.next_u64());
        assert!(a.below(10) < 10);
        let u = a.unit_f64();
        assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn run_executes_all_cases() {
        let mut n = 0;
        run("counting", |_| n += 1);
        assert_eq!(n, configured_cases());
    }
}
