//! The [`Strategy`] trait and the combinators the workspace uses.

use std::ops::{Range, RangeInclusive};

use crate::runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produces one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Boxes the strategy (used by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed strategies ([`prop_oneof!`](crate::prop_oneof)).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} options)", self.options.len())
    }
}

impl<T> Union<T> {
    /// Creates a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident => $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A => 0, B => 1),
    (A => 0, B => 1, C => 2),
    (A => 0, B => 1, C => 2, D => 3),
    (A => 0, B => 1, C => 2, D => 3, E => 4),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1000 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (1u8..=255).generate(&mut rng);
            assert!(w >= 1);
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn map_and_union() {
        let mut rng = TestRng::from_seed(2);
        let s = crate::prop_oneof![
            (0u32..10).prop_map(|v| v * 2),
            (100u32..110).prop_map(|v| v),
        ];
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v < 20 || (100..110).contains(&v));
        }
    }

    #[test]
    fn tuples_compose() {
        let mut rng = TestRng::from_seed(3);
        let (a, b) = (0u16..5, 10u32..15).generate(&mut rng);
        assert!(a < 5 && (10..15).contains(&b));
    }
}
