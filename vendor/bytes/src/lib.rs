//! Offline stand-in for the [`bytes`](https://docs.rs/bytes) crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small subset of the `bytes` API it actually
//! uses: [`Bytes`] (a cheaply cloneable, sliceable immutable buffer),
//! [`BytesMut`] (a growable buffer) and the [`BufMut`] write trait with
//! big-endian integer appends. Semantics match the real crate for this
//! subset, so swapping the registry version back in is a one-line
//! `Cargo.toml` change.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer.
///
/// Clones share the underlying allocation; [`Bytes::slice`] returns a
/// zero-copy view.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a zero-copy sub-view.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(start <= end && end <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + start,
            end: self.start + end,
        }
    }

    /// Copies the view into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from(v.as_bytes().to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

fn debug_bytes(data: &[u8], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "b\"")?;
    for &b in data.iter().take(64) {
        if b.is_ascii_graphic() {
            write!(f, "{}", b as char)?;
        } else {
            write!(f, "\\x{b:02x}")?;
        }
    }
    if data.len() > 64 {
        write!(f, "…")?;
    }
    write!(f, "\"")
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        debug_bytes(self.as_ref(), f)
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_ref().iter()
    }
}

/// A growable byte buffer, frozen into [`Bytes`] when complete.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// Creates an empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Resizes the buffer, filling new space with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.buf.resize(new_len, value);
    }

    /// Truncates to `len` bytes (no-op when already shorter).
    pub fn truncate(&mut self, len: usize) {
        self.buf.truncate(len);
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(buf: Vec<u8>) -> Self {
        BytesMut { buf }
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        debug_bytes(self.as_ref(), f)
    }
}

/// Big-endian append interface, as implemented by [`BytesMut`] and
/// `Vec<u8>` in the real crate.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_and_clone_share() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        assert_eq!(s.slice(..2).as_ref(), &[2, 3]);
        assert_eq!(b.clone(), b);
    }

    #[test]
    fn bufmut_big_endian() {
        let mut m = BytesMut::new();
        m.put_u8(1);
        m.put_u16(0x0203);
        m.put_u32(0x04050607);
        m.put_u64(0x08090a0b0c0d0e0f);
        assert_eq!(m.len(), 15);
        assert_eq!(m.freeze().as_ref()[..4], [1, 2, 3, 4]);
    }
}
