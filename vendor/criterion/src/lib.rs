//! Offline stand-in for the [`criterion`](https://docs.rs/criterion)
//! benchmark harness.
//!
//! The build environment has no network access to crates.io, so this
//! crate provides the subset of criterion's API the workspace's benches
//! use — [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`],
//! [`Throughput`], [`criterion_group!`]/[`criterion_main!`] — backed by a
//! simple but honest wall-clock measurement loop: each benchmark is
//! warmed up, then timed over batches until a minimum measurement window
//! elapses, and the per-iteration time (plus derived throughput) is
//! printed. Results are comparable run-to-run on the same machine, which
//! is what the repo's perf-trajectory tracking needs.
//!
//! A substring filter can be passed on the command line (as with real
//! criterion): `cargo bench -- cuckoo` runs only matching benchmarks.

use std::fmt;
use std::time::{Duration, Instant};

/// Minimum measured wall-clock window per benchmark.
const MEASURE_WINDOW: Duration = Duration::from_millis(40);
/// Warm-up window before measurement.
const WARMUP_WINDOW: Duration = Duration::from_millis(10);

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the measurement
/// loop.
#[derive(Debug)]
pub struct Bencher {
    /// Nanoseconds per iteration, filled in by `iter`.
    ns_per_iter: f64,
}

impl Bencher {
    /// Measures `f`: warm-up, then timed batches until the measurement
    /// window elapses.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up, also calibrating an initial batch size.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP_WINDOW {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let est_ns = (WARMUP_WINDOW.as_nanos() as f64 / warm_iters.max(1) as f64).max(0.5);
        // Batch roughly 5 ms of work between clock reads.
        let batch = ((5e6 / est_ns) as u64).clamp(1, 1 << 24);
        let mut total_iters: u64 = 0;
        let start = Instant::now();
        loop {
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            total_iters += batch;
            if start.elapsed() >= MEASURE_WINDOW {
                break;
            }
        }
        self.ns_per_iter = start.elapsed().as_nanos() as f64 / total_iters as f64;
    }
}

/// Shared measurement state for the whole bench binary.
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // First non-flag argument acts as a substring filter, matching
        // `cargo bench -- <filter>` usage with real criterion.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Applies CLI configuration (kept for API compatibility).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Benchmarks `f` under `id` outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let id: BenchmarkId = id.into();
        run_one(self.filter.as_deref(), &id.name, None, f);
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput
/// annotation.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the stub sizes its own windows.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let id: BenchmarkId = id.into();
        let full = format!("{}/{}", self.name, id.name);
        run_one(self.criterion.filter.as_deref(), &full, self.throughput, f);
    }

    /// Benchmarks `f` with an input value under `group/id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.name);
        run_one(
            self.criterion.filter.as_deref(),
            &full,
            self.throughput,
            |b| f(b, input),
        );
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    filter: Option<&str>,
    name: &str,
    tp: Option<Throughput>,
    mut f: F,
) {
    if let Some(filter) = filter {
        if !name.contains(filter) {
            return;
        }
    }
    let mut b = Bencher { ns_per_iter: 0.0 };
    f(&mut b);
    let ns = b.ns_per_iter;
    let rate = match tp {
        Some(Throughput::Bytes(bytes)) => {
            let gib = bytes as f64 / ns * 1e9 / (1024.0 * 1024.0 * 1024.0);
            format!("  {gib:8.2} GiB/s")
        }
        Some(Throughput::Elements(n)) => {
            let me = n as f64 / ns * 1e9 / 1e6;
            format!("  {me:8.2} Melem/s")
        }
        None => String::new(),
    };
    if ns >= 1e6 {
        println!("{name:<40} {:10.3} ms/iter{rate}", ns / 1e6);
    } else if ns >= 1e3 {
        println!("{name:<40} {:10.3} us/iter{rate}", ns / 1e3);
    } else {
        println!("{name:<40} {ns:10.1} ns/iter{rate}");
    }
}

/// Defines the bench entry function aggregating benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` for a bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Opaque value barrier, re-exported for compatibility.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { ns_per_iter: 0.0 };
        b.iter(|| std::hint::black_box(3u64).wrapping_mul(5));
        assert!(b.ns_per_iter > 0.0);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("eea3", 64).name, "eea3/64");
        assert_eq!(BenchmarkId::from_parameter(256).name, "256");
    }
}
