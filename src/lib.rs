//! # flexdriver — a software reproduction of FlexDriver (ASPLOS 2022)
//!
//! *FlexDriver: A Network Driver for Your Accelerator* (Eran et al.,
//! ASPLOS 2022) builds a hardware module — FLD — that lets an FPGA
//! accelerator drive a commodity ConnectX-5 NIC over peer-to-peer PCIe,
//! gaining all NIC offloads (RDMA, tunneling, RSS, QoS) with no CPU on the
//! data path. This workspace reproduces that system as a
//! transaction-level simulation plus fully functional substrates, and
//! regenerates every table and figure of the paper's evaluation.
//!
//! This crate is the facade: it re-exports the workspace's crates under
//! one name.
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`sim`] | `fld-sim` | discrete-event engine, links, histograms |
//! | [`net`] | `fld-net` | Ethernet/IPv4/UDP/TCP/VXLAN/RoCE/CoAP codecs, fragmentation, Toeplitz |
//! | [`cuckoo`] | `fld-cuckoo` | the 4-bank cuckoo hash with stash (§ 5.2) |
//! | [`crypto`] | `fld-crypto` | ZUC (EEA3/EIA3), SHA-256, HMAC, JWT |
//! | [`pcie`] | `fld-pcie` | TLP accounting + the § 8.1 performance model |
//! | [`nic`] | `fld-nic` | ConnectX-5-class NIC model (eSwitch, RSS, RC transport, shapers) |
//! | [`core`] | `fld-core` | FLD itself: hw model, memory model, control plane, system sims |
//! | [`accel`] | `fld-accel` | echo / ZUC / IP-defrag / IoT-auth accelerators + baselines |
//! | [`workloads`] | `fld-workloads` | traffic generators incl. the synthetic IMC-2010 mix |
//!
//! # Quickstart
//!
//! Reproduce the paper's headline memory result (Table 3):
//!
//! ```
//! use flexdriver::core::memmodel::{
//!     fld_breakdown, software_breakdown, FldOptimizations, MemParams,
//! };
//!
//! let params = MemParams::default();
//! let software = software_breakdown(&params).total();
//! let fld = fld_breakdown(&params, FldOptimizations::ALL).total();
//! assert!(software as f64 / fld as f64 > 100.0); // the x105 shrink
//! ```
//!
//! Run an end-to-end FLD-E echo (see `examples/quickstart.rs` for the full
//! version):
//!
//! ```
//! use flexdriver::accel::EchoAccelerator;
//! use flexdriver::core::{ClientGen, FldSystem, GenMode, HostMode, SystemConfig};
//! use flexdriver::sim::SimTime;
//!
//! let gen = ClientGen::fixed_udp(GenMode::ClosedLoop { window: 1 }, 100, 22);
//! let mut sys = FldSystem::new(
//!     SystemConfig::remote(),
//!     Box::new(EchoAccelerator::prototype()),
//!     HostMode::Consume,
//!     gen,
//! );
//! // Steer everything to the accelerator and echo it back out.
//! use flexdriver::nic::{Action, Direction, MatchSpec, Rule};
//! sys.nic.install_rule(Direction::Ingress, 0, Rule {
//!     priority: 0,
//!     spec: MatchSpec::any(),
//!     actions: vec![Action::ToAccelerator { queue: 0, next_table: 1 }],
//! }).unwrap();
//! sys.nic.install_rule(Direction::Ingress, 1, Rule {
//!     priority: 0,
//!     spec: MatchSpec::any(),
//!     actions: vec![Action::ToWire { port: 0 }],
//! }).unwrap();
//! let stats = sys.run(SimTime::ZERO, SimTime::from_millis(100));
//! assert_eq!(stats.rtt.count(), 100);
//! ```

#![warn(missing_docs)]

/// The discrete-event simulation engine (`fld-sim`).
pub use fld_sim as sim;

/// Packet formats and network algorithms (`fld-net`).
pub use fld_net as net;

/// The four-bank cuckoo hash table (`fld-cuckoo`).
pub use fld_cuckoo as cuckoo;

/// From-scratch cryptography (`fld-crypto`).
pub use fld_crypto as crypto;

/// The PCIe transaction-level model (`fld-pcie`).
pub use fld_pcie as pcie;

/// The ConnectX-5-class NIC model (`fld-nic`).
pub use fld_nic as nic;

/// The FlexDriver core (`fld-core`).
pub use fld_core as core;

/// Example accelerators and baselines (`fld-accel`).
pub use fld_accel as accel;

/// Traffic generators (`fld-workloads`).
pub use fld_workloads as workloads;
