//! Cross-crate integration: the paper's central memory claims (Tables 2/3,
//! Figure 4) through the facade, plus property-based checks that the FLD
//! breakdown dominates the software breakdown across the whole parameter
//! space.

use flexdriver::core::memmodel::{
    fld_breakdown, software_breakdown, FldOptimizations, MemParams, XCKU15P_CAPACITY_BYTES,
};
use flexdriver::sim::time::{Bandwidth, SimDuration};
use proptest::prelude::*;

#[test]
fn headline_numbers() {
    let p = MemParams::default();
    let sw = software_breakdown(&p).total();
    let fld = fld_breakdown(&p, FldOptimizations::ALL).total();
    // 85.3 MiB vs 832.7 KiB, x105 (Table 3).
    assert!((sw as f64 / (1 << 20) as f64 - 85.3).abs() < 0.2);
    assert!((fld as f64 / 1024.0 - 832.7).abs() < 3.0);
    let shrink = sw as f64 / fld as f64;
    assert!((shrink - 105.0).abs() < 2.0, "shrink {shrink:.1}");
    // §4.3: software cannot fit the prototype FPGA; FLD fits easily.
    assert!(sw > XCKU15P_CAPACITY_BYTES);
    assert!(fld < XCKU15P_CAPACITY_BYTES);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FLD never uses more memory than the conventional driver layout, for
    /// any plausible configuration.
    #[test]
    fn fld_always_dominates(
        gbps in 10.0f64..400.0,
        queues in 1u64..4096,
        ltx_us in 5u64..100,
        lrx_us in 1u64..20,
        min_pkt in 64u64..1024,
    ) {
        let p = MemParams {
            bandwidth: Bandwidth::gbps(gbps),
            tx_queues: queues,
            lifetime_tx: SimDuration::from_micros(ltx_us),
            lifetime_rx: SimDuration::from_micros(lrx_us),
            min_packet: min_pkt,
            ..MemParams::default()
        };
        let sw = software_breakdown(&p).total();
        let fld = fld_breakdown(&p, FldOptimizations::ALL).total();
        prop_assert!(fld <= sw, "fld {fld} > sw {sw} at {gbps} Gbps, {queues} queues");
    }

    /// The shrink ratio grows with the number of queues (the Tx-ring
    /// sharing is the dominant win at scale) — the Figure 4 divergence.
    #[test]
    fn shrink_grows_with_queues(gbps in 25.0f64..400.0) {
        let at = |q: u64| {
            let p = MemParams {
                bandwidth: Bandwidth::gbps(gbps),
                tx_queues: q,
                ..MemParams::default()
            };
            software_breakdown(&p).total() as f64
                / fld_breakdown(&p, FldOptimizations::ALL).total() as f64
        };
        prop_assert!(at(2048) > at(64));
    }

    /// Each optimization is individually profitable everywhere.
    #[test]
    fn optimizations_never_hurt(gbps in 10.0f64..400.0, queues in 8u64..2048) {
        let p = MemParams {
            bandwidth: Bandwidth::gbps(gbps),
            tx_queues: queues,
            ..MemParams::default()
        };
        let full = fld_breakdown(&p, FldOptimizations::ALL).total();
        for opts in [
            FldOptimizations { compression: false, ..FldOptimizations::ALL },
            FldOptimizations { tx_ring_translation: false, ..FldOptimizations::ALL },
            FldOptimizations { tx_buffer_sharing: false, ..FldOptimizations::ALL },
            FldOptimizations { mprq: false, ..FldOptimizations::ALL },
            FldOptimizations { rx_ring_in_host: false, ..FldOptimizations::ALL },
        ] {
            prop_assert!(fld_breakdown(&p, opts).total() >= full);
        }
    }
}
