//! Cross-crate integration: the disaggregated ZUC accelerator — the
//! functional crypto path (client library → request protocol → ZUC) and
//! the simulated FLD-R performance path.

use flexdriver::accel::client::CryptoSession;
use flexdriver::accel::zuc_accel::{ZucAccelerator, REQUEST_HEADER_BYTES};
use flexdriver::core::params::AccelParams;
use flexdriver::core::{RdmaConfig, RdmaSystem};
use flexdriver::crypto::zuc::eea3;
use flexdriver::sim::SimTime;

#[test]
fn client_library_is_cryptodev_compatible() {
    // Encrypt through the "remote" path and through the local library; the
    // outputs must be identical (the paper's drop-in compatibility claim).
    let key = [0x42u8; 16];
    let session = CryptoSession::new(key, 7, 1);
    for (count, msg) in [
        (1u32, &b"short"[..]),
        (2, &[0xAB; 1024][..]),
        (3, &[0u8; 4096][..]),
    ] {
        let request = session.encrypt_request(count, msg);
        let response = CryptoSession::serve(&request).unwrap();
        let remote = session.complete_cipher(msg.len(), &response).unwrap();

        let mut local = msg.to_vec();
        eea3(&key, count, 7, 1, local.len() * 8, &mut local);
        assert_eq!(remote, local, "count {count}");
    }
}

#[test]
fn remote_zuc_beats_software_and_respects_line_rate() {
    let cfg = RdmaConfig::remote(512 + REQUEST_HEADER_BYTES as u32, 64, 200_000);
    let stats = RdmaSystem::new(cfg, Box::new(ZucAccelerator::new(AccelParams::default())))
        .run(SimTime::from_millis(3), SimTime::from_millis(80));
    let goodput = stats.goodput.gbps() * 512.0 / (512 + 64) as f64;
    let sw = AccelParams::default().sw_zuc_core_gbps;
    // Figure 8a: ~17.6 Gbps for 512 B requests, ~4x the CPU baseline.
    assert!(goodput > 2.0 * sw, "goodput {goodput:.2} vs sw {sw:.2}");
    assert!(goodput < 25.0, "cannot exceed the 25 GbE line");
    assert_eq!(stats.retransmits, 0, "lossless run must not retransmit");
}

#[test]
fn zuc_latency_dominated_by_unit_time_at_low_load() {
    let cfg = RdmaConfig::remote(512 + REQUEST_HEADER_BYTES as u32, 1, 2_000);
    let stats = RdmaSystem::new(cfg, Box::new(ZucAccelerator::new(AccelParams::default())))
        .run(SimTime::ZERO, SimTime::from_secs(1));
    assert_eq!(stats.completed, 2_000);
    let p50_us = stats.latency.percentile(50.0) as f64 / 1000.0;
    // RTT (~5 us network) + ~0.9 us ZUC unit time.
    assert!((3.0..20.0).contains(&p50_us), "median {p50_us:.2} us");
}
