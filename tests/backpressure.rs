//! Cross-crate integration: the § 5.5 flow-control contract. Accelerators
//! may not backpressure FLD; a slow accelerator therefore overflows the
//! FLD receive buffer and the NIC drops — while the credit interface keeps
//! the transmit side lossless.

use flexdriver::accel::EchoAccelerator;
use flexdriver::core::system::drops;
use flexdriver::core::{ClientGen, FldSystem, GenMode, HostMode, SystemConfig};
use flexdriver::nic::{Action, Direction, MatchSpec, Rule};
use flexdriver::sim::time::{Bandwidth, SimDuration};
use flexdriver::sim::SimTime;

fn steer(sys: &mut FldSystem) {
    sys.nic
        .install_rule(
            Direction::Ingress,
            0,
            Rule {
                priority: 0,
                spec: MatchSpec::any(),
                actions: vec![Action::ToAccelerator {
                    queue: 0,
                    next_table: 1,
                }],
            },
        )
        .unwrap();
    sys.nic
        .install_rule(
            Direction::Ingress,
            1,
            Rule {
                priority: 0,
                spec: MatchSpec::any(),
                actions: vec![Action::ToWire { port: 0 }],
            },
        )
        .unwrap();
}

#[test]
fn slow_accelerator_overflows_fld_rx_and_nic_drops() {
    // A 2 Gbps accelerator offered ~24 Gbps: the paper's § 5.5 scenario —
    // "that would eventually cause FLD buffers to fill up, and the NIC
    // would drop incoming packets".
    let slow = EchoAccelerator::new(Bandwidth::gbps(2.0), SimDuration::from_nanos(60));
    let rate = 24e9 / (1500.0 * 8.0);
    let gen = ClientGen::fixed_udp(GenMode::OpenLoop { rate }, 400_000, 1458);
    let mut sys = FldSystem::new(
        SystemConfig::remote(),
        Box::new(slow),
        HostMode::Consume,
        gen,
    );
    steer(&mut sys);
    let stats = sys.run(SimTime::from_millis(2), SimTime::from_millis(40));
    // Echoed goodput collapses to the accelerator's capacity...
    let gbps = stats.client_rate.gbps();
    assert!(
        (1.5..2.5).contains(&gbps),
        "echo goodput {gbps:.2} should track accel capacity"
    );
    // ...and the excess shows up as FLD rx-overflow drops, not silent loss.
    let overflow = stats.drops.get(drops::FLD_RX_OVERFLOW);
    assert!(overflow > 10_000, "rx overflow drops {overflow}");
}

#[test]
fn line_rate_accelerator_never_overflows() {
    let rate = 24e9 / (1500.0 * 8.0);
    let gen = ClientGen::fixed_udp(GenMode::OpenLoop { rate }, 200_000, 1458);
    let mut sys = FldSystem::new(
        SystemConfig::remote(),
        Box::new(EchoAccelerator::prototype()),
        HostMode::Consume,
        gen,
    );
    steer(&mut sys);
    let stats = sys.run(SimTime::from_millis(2), SimTime::from_millis(40));
    assert_eq!(stats.drops.get(drops::FLD_RX_OVERFLOW), 0);
    assert_eq!(stats.drops.get(drops::FLD_TX_BACKPRESSURE), 0);
    assert!(stats.client_rate.gbps() > 22.0);
}

#[test]
fn tx_credits_recycle_under_sustained_load() {
    // After a long run, every transmit credit must be back in the pool:
    // descriptor leaks would eventually wedge the accelerator.
    let rate = 20e9 / (1500.0 * 8.0);
    let gen = ClientGen::fixed_udp(GenMode::OpenLoop { rate }, 150_000, 1458);
    let mut sys = FldSystem::new(
        SystemConfig::remote(),
        Box::new(EchoAccelerator::prototype()),
        HostMode::Consume,
        gen,
    );
    steer(&mut sys);
    let stats = sys.run(SimTime::ZERO, SimTime::from_secs(1));
    assert_eq!(stats.rtt.count(), 150_000, "every packet must return");
    // The system drained: re-inspect FLD state via a fresh system is not
    // possible (run consumes it), so leaks are caught by the count above
    // plus the hw-level unit test `sustained_churn_recycles_everything`.
}
