//! The paper's qualitative conclusions must not depend on a lucky RNG
//! seed: rerun the key comparisons across several seeds and assert the
//! *orderings* (who wins, roughly by how much) every time.

use flexdriver::accel::EchoAccelerator;
use flexdriver::core::{ClientGen, FldSystem, GenMode, HostMode, SystemConfig};
use flexdriver::nic::{Action, Direction, MatchSpec, Rule};
use flexdriver::sim::SimTime;

const SEEDS: [u64; 3] = [0xF1D0, 0xBEEF, 0x1234_5678];

fn echo_run(seed: u64, use_fld: bool) -> (f64, u64) {
    let cfg = SystemConfig {
        seed,
        ..SystemConfig::remote()
    };
    let rate = cfg.client_rate.as_bps() / (1500.0 * 8.0);
    let gen = ClientGen::fixed_udp(GenMode::OpenLoop { rate }, 120_000, 1458);
    let host_mode = if use_fld {
        HostMode::Consume
    } else {
        HostMode::Echo
    };
    let mut sys = FldSystem::new(cfg, Box::new(EchoAccelerator::prototype()), host_mode, gen);
    if use_fld {
        sys.nic
            .install_rule(
                Direction::Ingress,
                0,
                Rule {
                    priority: 0,
                    spec: MatchSpec::any(),
                    actions: vec![Action::ToAccelerator {
                        queue: 0,
                        next_table: 1,
                    }],
                },
            )
            .unwrap();
        sys.nic
            .install_rule(
                Direction::Ingress,
                1,
                Rule {
                    priority: 0,
                    spec: MatchSpec::any(),
                    actions: vec![Action::ToWire { port: 0 }],
                },
            )
            .unwrap();
    } else {
        let rss = sys.nic.create_rss(16);
        sys.nic
            .install_rule(
                Direction::Ingress,
                0,
                Rule {
                    priority: 0,
                    spec: MatchSpec::any(),
                    actions: vec![Action::ToHostRss { rss_id: rss }],
                },
            )
            .unwrap();
        sys.nic
            .install_rule(
                Direction::Egress,
                0,
                Rule {
                    priority: 0,
                    spec: MatchSpec::any(),
                    actions: vec![Action::ToWire { port: 0 }],
                },
            )
            .unwrap();
    }
    let stats = sys.run(SimTime::from_millis(3), SimTime::from_millis(40));
    (stats.client_rate.gbps(), stats.rtt.percentile(50.0))
}

#[test]
fn echo_throughput_stable_across_seeds() {
    let rates: Vec<f64> = SEEDS.iter().map(|&s| echo_run(s, true).0).collect();
    for (i, r) in rates.iter().enumerate() {
        assert!(
            (r - rates[0]).abs() / rates[0] < 0.02,
            "seed {} diverged: {r:.2} vs {:.2}",
            SEEDS[i],
            rates[0]
        );
        assert!(*r > 22.0, "seed {} below line-rate band: {r:.2}", SEEDS[i]);
    }
}

#[test]
fn fld_vs_cpu_parity_holds_across_seeds() {
    for &seed in &SEEDS {
        let (fld, _) = echo_run(seed, true);
        let (cpu, _) = echo_run(seed, false);
        assert!(
            (fld - cpu).abs() / fld < 0.1,
            "seed {seed:#x}: fld {fld:.2} vs cpu {cpu:.2}"
        );
    }
}

#[test]
fn defrag_conclusions_hold_across_seeds() {
    use fld_bench::experiments::defrag::{run_defrag, DefragConfig};
    use fld_bench::Scale;
    // The defrag experiment's RNG affects only tenant/jitter draws, but the
    // conclusion (hardware defrag ~7x software) must be robust to scale
    // changes too: run at two different quick scales.
    for (packets, deadline) in [(50_000u64, 20u64), (90_000, 35)] {
        let scale = Scale {
            packets,
            warmup_ms: 2,
            deadline_ms: deadline,
        };
        let sw = run_defrag(DefragConfig::SoftwareDefrag, scale);
        let hw = run_defrag(DefragConfig::HardwareDefrag, scale);
        assert!(
            hw / sw > 4.0,
            "scale {packets}/{deadline}: speedup {:.1} too small",
            hw / sw
        );
    }
}

#[test]
fn isolation_conclusion_holds_across_seeds() {
    use fld_bench::experiments::iot::run_isolation;
    use fld_bench::Scale;
    let scale = Scale {
        packets: 60_000,
        warmup_ms: 2,
        deadline_ms: 25,
    };
    // The proportional-split and shaped-fairness results must hold at a
    // different offered mix too (12 vs 12 instead of 8 vs 16).
    let even = run_isolation((12.0, 12.0), 12.0, None, 1024, scale);
    assert!(
        (even.0 - even.1).abs() < 1.0,
        "equal offered loads must split evenly: {even:?}"
    );
    let shaped = run_isolation((12.0, 12.0), 12.0, Some(6.0), 1024, scale);
    assert!(
        (shaped.0 - 6.0).abs() < 1.0 && (shaped.1 - 6.0).abs() < 1.0,
        "{shaped:?}"
    );
}
