//! Cross-crate integration: the FLD-E echo path end to end through the
//! public facade, checked against the analytic performance model.

use flexdriver::accel::EchoAccelerator;
use flexdriver::core::{ClientGen, FldSystem, GenMode, HostMode, SystemConfig};
use flexdriver::nic::{Action, Direction, MatchSpec, Rule};
use flexdriver::pcie::model::FldModel;
use flexdriver::sim::SimTime;

fn echo_system(cfg: SystemConfig, gen: ClientGen) -> FldSystem {
    let mut sys = FldSystem::new(
        cfg,
        Box::new(EchoAccelerator::prototype()),
        HostMode::Consume,
        gen,
    );
    sys.nic
        .install_rule(
            Direction::Ingress,
            0,
            Rule {
                priority: 0,
                spec: MatchSpec::any(),
                actions: vec![Action::ToAccelerator {
                    queue: 0,
                    next_table: 1,
                }],
            },
        )
        .unwrap();
    sys.nic
        .install_rule(
            Direction::Ingress,
            1,
            Rule {
                priority: 0,
                spec: MatchSpec::any(),
                actions: vec![Action::ToWire { port: 0 }],
            },
        )
        .unwrap();
    sys
}

#[test]
fn remote_echo_matches_model_across_sizes() {
    let cfg = SystemConfig::remote();
    let model = FldModel::new(cfg.pcie);
    for frame in [256u32, 512, 1024, 1500] {
        let rate = cfg.client_rate.as_bps() / (frame as f64 * 8.0);
        let gen = ClientGen::fixed_udp(
            GenMode::OpenLoop { rate },
            150_000,
            frame.saturating_sub(42),
        );
        let sys = echo_system(cfg, gen);
        let stats = sys.run(SimTime::from_millis(3), SimTime::from_millis(50));
        let measured = stats.client_rate.gbps() * 1e9;
        let bound = model.echo_throughput(frame, cfg.client_rate);
        assert!(
            measured > bound * 0.8,
            "frame {frame}: measured {:.2} far below model {:.2}",
            measured / 1e9,
            bound / 1e9
        );
        assert!(
            measured < bound * 1.05,
            "frame {frame}: measured {:.2} exceeds model bound {:.2}",
            measured / 1e9,
            bound / 1e9
        );
    }
}

#[test]
fn echo_latency_unloaded_is_microseconds() {
    let cfg = SystemConfig::remote();
    let gen = ClientGen::fixed_udp(GenMode::ClosedLoop { window: 1 }, 5_000, 22);
    let stats = echo_system(cfg, gen).run(SimTime::ZERO, SimTime::from_secs(1));
    assert_eq!(stats.rtt.count(), 5_000);
    let p50_us = stats.rtt.percentile(50.0) as f64 / 1000.0;
    // Table 6 territory: a few microseconds.
    assert!((1.0..8.0).contains(&p50_us), "median {p50_us:.2} us");
    // No drops on an unloaded run.
    assert_eq!(stats.drops.iter().map(|(_, v)| v).sum::<u64>(), 0);
}

#[test]
fn local_mode_uses_pcie_headroom() {
    // The same 1500 B echo must be faster against the 50 Gbps local PCIe
    // than against the 25 GbE wire.
    let run = |cfg: SystemConfig| {
        let rate = cfg.client_rate.as_bps() / (1500.0 * 8.0);
        let gen = ClientGen::fixed_udp(GenMode::OpenLoop { rate }, 150_000, 1458);
        echo_system(cfg, gen)
            .run(SimTime::from_millis(3), SimTime::from_millis(40))
            .client_rate
            .gbps()
    };
    let remote = run(SystemConfig::remote());
    let local = run(SystemConfig::local());
    assert!(
        local > remote * 1.5,
        "local {local:.2} vs remote {remote:.2}"
    );
}
