//! Cross-crate integration: the § 8.2.2 / § 8.2.3 offload-chaining claims —
//! NIC offloads working both *before* and *after* the accelerator — and
//! tenant isolation, at reduced scale via the fld-bench experiment
//! harness.

use fld_bench::experiments::defrag::{run_defrag, DefragConfig};
use fld_bench::experiments::iot::run_isolation;
use fld_bench::Scale;

fn scale() -> Scale {
    Scale {
        packets: 60_000,
        warmup_ms: 2,
        deadline_ms: 25,
    }
}

#[test]
fn hardware_defrag_restores_rss_and_beats_software() {
    let sw = run_defrag(DefragConfig::SoftwareDefrag, scale());
    let hw = run_defrag(DefragConfig::HardwareDefrag, scale());
    let nofrag = run_defrag(DefragConfig::NoFrag, scale());
    // Paper §8.2.2: 3.2 -> 22.4 Gbps (7x), with 23.2 un-fragmented.
    assert!(
        sw < 4.5,
        "software defrag must bottleneck on one core: {sw:.1}"
    );
    assert!(hw / sw > 4.0, "speedup {:.1}x too small", hw / sw);
    assert!(nofrag >= hw * 0.9, "no-frag {nofrag:.1} vs hw {hw:.1}");
}

#[test]
fn vxlan_decap_chains_before_defrag() {
    let c = run_defrag(DefragConfig::VxlanHardwareDefrag, scale());
    let sw = run_defrag(DefragConfig::SoftwareDefrag, scale());
    // Paper: 5.25x over the software baseline, sender-bound.
    let speedup = c / sw;
    assert!(
        (3.0..7.0).contains(&speedup),
        "VXLAN config speedup {speedup:.2} outside the expected band (c={c:.1}, sw={sw:.1})"
    );
}

#[test]
fn nic_shaping_isolates_tenants() {
    let unshaped = run_isolation((8.0, 16.0), 12.0, None, 1024, scale());
    let shaped = run_isolation((8.0, 16.0), 12.0, Some(6.0), 1024, scale());
    // Unshaped: admission proportional to offered load (paper 4.15/8.35).
    assert!(unshaped.1 > unshaped.0 * 1.5, "unshaped {unshaped:?}");
    // Shaped: both tenants get their 6 Gbps allocation.
    assert!((shaped.0 - 6.0).abs() < 1.0, "shaped A {:.2}", shaped.0);
    assert!((shaped.1 - 6.0).abs() < 1.0, "shaped B {:.2}", shaped.1);
}
